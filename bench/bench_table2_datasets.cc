// Table II reproduction: statistics of the evaluation datasets.
//
// Paper values:
//   Amazon   | 29,240 nodes | height 10 | max deg 225 | Tree | 13,886,889
//   ImageNet | 27,714 nodes | height 13 | max deg 402 | DAG  | 12,656,970
#include "bench/bench_common.h"
#include "util/ascii_table.h"

namespace aigs::bench {
namespace {

void AddRow(AsciiTable& table, const Dataset& d) {
  table.AddRow({d.name, FormatWithCommas(d.hierarchy.NumNodes()),
                std::to_string(d.hierarchy.Height()),
                std::to_string(d.hierarchy.MaxOutDegree()),
                d.hierarchy.is_tree() ? "Tree" : "DAG",
                FormatWithCommas(d.num_objects)});
}

int Main() {
  PrintBanner("Table II: statistics of datasets");
  const double scale = DatasetScale();
  AsciiTable table(
      {"Dataset", "#nodes", "Height", "Max Deg.", "Type", "#objects"});
  AddRow(table, MakeAmazonDataset(scale));
  AddRow(table, MakeImageNetDataset(scale));
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper (full scale): Amazon 29,240/10/225/Tree/13,886,889 ; "
      "ImageNet 27,714/13/402/DAG/12,656,970\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
