#include "core/tree_weight_index.h"

#include "tree/subtree_weights.h"

namespace aigs {

TreeWeightBase::TreeWeightBase(const Tree& tree,
                               std::vector<Weight> node_weights)
    : tree_(&tree) {
  subtree_size_ = ComputeSubtreeSizes(tree);
  SetWeights(std::move(node_weights));
}

void TreeWeightBase::SetWeights(std::vector<Weight> node_weights) {
  AIGS_CHECK(node_weights.size() == tree_->NumNodes());
  node_weight_ = std::move(node_weights);
  subtree_weight_ = ComputeSubtreeWeights(*tree_, node_weight_);
}

void TreeWeightBase::AddWeight(NodeId v, Weight delta) {
  node_weight_[v] += delta;
  for (NodeId a = v; a != kInvalidNode; a = tree_->Parent(a)) {
    subtree_weight_[a] += delta;
  }
}

void TreeSearchState::ApplyNo(NodeId q) {
  const Tree& tree = base_->tree();
  AIGS_DCHECK(q != root_);
  AIGS_DCHECK(tree.InSubtree(root_, q));
  AIGS_DCHECK(!IsRemovedTop(q));
  // Session values of the subtree being removed (they already account for
  // earlier removals strictly inside T_q).
  const Weight w = SubtreeWeight(q);
  const std::uint32_t s = SubtreeSize(q);
  AIGS_DCHECK(s >= 1);
  for (NodeId a = tree.Parent(q); a != kInvalidNode; a = tree.Parent(a)) {
    removed_weight_[a] += w;
    removed_size_[a] += s;
    if (a == root_) {
      break;
    }
  }
  removed_top_[q] = 1;
}

}  // namespace aigs
