#include "prob/distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/alias_table.h"
#include "prob/empirical.h"
#include "prob/rounding.h"
#include "util/rng.h"

namespace aigs {
namespace {

TEST(Distribution, FromWeightsBasics) {
  auto d = Distribution::FromWeights({1, 2, 3, 4});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 4u);
  EXPECT_EQ(d->Total(), 10u);
  EXPECT_EQ(d->MaxWeight(), 4u);
  EXPECT_DOUBLE_EQ(d->Probability(3), 0.4);
}

TEST(Distribution, RejectsEmptyAndZero) {
  EXPECT_FALSE(Distribution::FromWeights({}).ok());
  EXPECT_FALSE(Distribution::FromWeights({0, 0}).ok());
}

TEST(Distribution, FromRealsScalesToMax) {
  auto d = Distribution::FromReals({0.5, 1.0, 0.25});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->WeightOf(1), Distribution::kRealScale);
  EXPECT_EQ(d->WeightOf(0), Distribution::kRealScale / 2);
}

TEST(Distribution, FromRealsRejectsNegativeAndNan) {
  EXPECT_FALSE(Distribution::FromReals({1.0, -0.5}).ok());
  EXPECT_FALSE(Distribution::FromReals({std::nan("")}).ok());
  EXPECT_FALSE(Distribution::FromReals({0.0, 0.0}).ok());
}

TEST(Distribution, EqualDistribution) {
  const Distribution d = EqualDistribution(5);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(d.Probability(v), 0.2);
  }
}

TEST(Distribution, EntropyBits) {
  EXPECT_NEAR(EqualDistribution(8).EntropyBits(), 3.0, 1e-12);
  const Distribution point = PointMassDistribution(10, 3);
  EXPECT_NEAR(point.EntropyBits(), 0.0, 1e-12);
}

TEST(Distribution, UniformRandomPositiveEverywhere) {
  Rng rng(1);
  const Distribution d = UniformRandomDistribution(100, rng);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_GT(d.WeightOf(v), 0u);
  }
}

TEST(Distribution, ExponentialRandomSkewedButPositive) {
  Rng rng(2);
  const Distribution d = ExponentialRandomDistribution(200, rng);
  EXPECT_GT(d.Total(), 0u);
  // Exponential should produce a wider weight spread than uniform.
  EXPECT_GT(d.MaxWeight(), d.Total() / 200);
}

TEST(Distribution, ZipfIsHeavilySkewed) {
  Rng rng(3);
  const Distribution zipf = ZipfRandomDistribution(500, 2.0, rng);
  // Under Zipf(2), most draws are 1 — the max weight holds a large share.
  EXPECT_GT(zipf.EntropyBits(), 0.0);
  EXPECT_LT(zipf.EntropyBits(), EqualDistribution(500).EntropyBits());
}

TEST(Distribution, ZipfSmallerExponentIsMoreSkewed) {
  Rng rng1(4);
  Rng rng2(4);
  const Distribution a15 = ZipfRandomDistribution(400, 1.5, rng1);
  const Distribution a40 = ZipfRandomDistribution(400, 4.0, rng2);
  // Larger a concentrates draws at 1 → closer to uniform over nodes.
  EXPECT_LT(a15.EntropyBits(), a40.EntropyBits());
}

TEST(Distribution, PointMass) {
  const Distribution d = PointMassDistribution(4, 2);
  EXPECT_EQ(d.Total(), 1u);
  EXPECT_EQ(d.WeightOf(2), 1u);
  EXPECT_EQ(d.WeightOf(0), 0u);
}

// ---- Rounding (Eq. 1) -------------------------------------------------------

TEST(Rounding, MatchesFormula) {
  // n = 4, weights {1, 2, 4}: w(u) = ceil(16 * w / 4).
  auto d = Distribution::FromWeights({1, 2, 4, 0});
  ASSERT_TRUE(d.ok());
  RoundingOptions options;
  options.clamp_min_one = false;
  const auto rounded = RoundWeights(*d, options);
  EXPECT_EQ(rounded[0], 4u);   // ceil(16·1/4)
  EXPECT_EQ(rounded[1], 8u);   // ceil(16·2/4)
  EXPECT_EQ(rounded[2], 16u);  // ceil(16·4/4) = n²
  EXPECT_EQ(rounded[3], 0u);   // p = 0 stays 0 without clamping
}

TEST(Rounding, CeilingIsExact) {
  // n = 3, weights {1, 3}: ceil(9·1/3) = 3 exactly (no float artifacts).
  auto d = Distribution::FromWeights({1, 3, 3});
  ASSERT_TRUE(d.ok());
  const auto rounded = RoundWeights(*d);
  EXPECT_EQ(rounded[0], 3u);
  EXPECT_EQ(rounded[1], 9u);
}

TEST(Rounding, ClampLiftsZeros) {
  auto d = Distribution::FromWeights({0, 5});
  ASSERT_TRUE(d.ok());
  const auto rounded = RoundWeights(*d);  // clamp on by default
  EXPECT_EQ(rounded[0], 1u);
  EXPECT_EQ(rounded[1], 4u);  // n² = 4
}

TEST(Rounding, MaxWeightMapsToNSquared) {
  Rng rng(5);
  const Distribution d = UniformRandomDistribution(64, rng);
  const auto rounded = RoundWeights(d);
  Weight max_rounded = 0;
  for (const Weight w : rounded) {
    max_rounded = std::max(max_rounded, w);
  }
  EXPECT_EQ(max_rounded, 64u * 64u);
}

TEST(Rounding, PreservesOrdering) {
  Rng rng(6);
  const Distribution d = ExponentialRandomDistribution(128, rng);
  const auto rounded = RoundWeights(d);
  for (NodeId a = 0; a < d.size(); ++a) {
    for (NodeId b = 0; b < d.size(); ++b) {
      if (d.WeightOf(a) < d.WeightOf(b)) {
        EXPECT_LE(rounded[a], rounded[b]);
      }
    }
  }
}

// ---- Alias table -------------------------------------------------------------

TEST(AliasTable, FrequenciesMatchWeights) {
  auto d = Distribution::FromWeights({1, 0, 3, 6});
  ASSERT_TRUE(d.ok());
  const AliasTable table(*d);
  Rng rng(7);
  std::vector<int> hits(4, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++hits[table.Sample(rng)];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[0]) / kSamples, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[2]) / kSamples, 0.3, 0.015);
  EXPECT_NEAR(static_cast<double>(hits[3]) / kSamples, 0.6, 0.015);
}

TEST(AliasTable, PointMassAlwaysSamplesTarget) {
  const Distribution d = PointMassDistribution(20, 13);
  const AliasTable table(d);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Sample(rng), 13u);
  }
}

// ---- Empirical counts --------------------------------------------------------

TEST(Empirical, StartsAtPrior) {
  EmpiricalCounts counts(10, 2);
  EXPECT_EQ(counts.Total(), 20u);
  EXPECT_EQ(counts.WeightOf(5), 2u);
  EXPECT_EQ(counts.NumObserved(), 0u);
}

TEST(Empirical, ObserveAccumulates) {
  EmpiricalCounts counts(3, 1);
  counts.Observe(1);
  counts.Observe(1);
  counts.Observe(2);
  EXPECT_EQ(counts.WeightOf(1), 3u);
  EXPECT_EQ(counts.WeightOf(2), 2u);
  EXPECT_EQ(counts.Total(), 6u);
  EXPECT_EQ(counts.NumObserved(), 3u);
}

TEST(Empirical, ResetRestoresPrior) {
  EmpiricalCounts counts(3, 1);
  counts.Observe(0);
  counts.Reset();
  EXPECT_EQ(counts.Total(), 3u);
  EXPECT_EQ(counts.NumObserved(), 0u);
}

TEST(Empirical, ConvergesToTrueDistribution) {
  Rng rng(9);
  auto truth = Distribution::FromWeights({50, 30, 15, 5});
  ASSERT_TRUE(truth.ok());
  const AliasTable sampler(*truth);
  EmpiricalCounts counts(4, 1);
  double tv_early = -1;
  for (int i = 0; i < 20000; ++i) {
    counts.Observe(sampler.Sample(rng));
    if (i == 200) {
      tv_early = TotalVariationDistance(counts.ToDistribution(), *truth);
    }
  }
  const double tv_late =
      TotalVariationDistance(counts.ToDistribution(), *truth);
  EXPECT_LT(tv_late, tv_early);
  EXPECT_LT(tv_late, 0.02);
}

TEST(Empirical, TotalVariationBounds) {
  const Distribution a = PointMassDistribution(3, 0);
  const Distribution b = PointMassDistribution(3, 2);
  EXPECT_NEAR(TotalVariationDistance(a, b), 1.0, 1e-12);
  EXPECT_NEAR(TotalVariationDistance(a, a), 0.0, 1e-12);
}

}  // namespace
}  // namespace aigs
