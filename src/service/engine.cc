#include "service/engine.h"

#include <utility>

namespace aigs {
namespace {

const char* KindName(Query::Kind kind) {
  switch (kind) {
    case Query::Kind::kReach:
      return "reach";
    case Query::Kind::kReachBatch:
      return "reach-batch";
    case Query::Kind::kChoice:
      return "choice";
    case Query::Kind::kDone:
      return "done";
  }
  return "?";
}

/// True iff `planned` poses exactly the question `step` records (the
/// answer is data, not part of the match).
bool QuestionMatchesStep(const Query& planned, const TranscriptStep& step) {
  if (planned.kind != step.kind) {
    return false;
  }
  return planned.kind == Query::Kind::kReach
             ? (step.nodes.size() == 1 && planned.node == step.nodes[0])
             : planned.choices == step.nodes;
}

/// Shape validation for replayed steps — adversarial blobs must fail with
/// a Status before any applier sees them.
Status ValidateStepShape(const TranscriptStep& step, std::size_t num_nodes,
                         std::size_t index) {
  const std::string at = " (step " + std::to_string(index) + ")";
  if (step.nodes.empty()) {
    return Status::InvalidArgument("transcript step names no nodes" + at);
  }
  for (const NodeId v : step.nodes) {
    if (v >= num_nodes) {
      return Status::OutOfRange("transcript node " + std::to_string(v) +
                                " outside the current hierarchy" + at);
    }
  }
  switch (step.kind) {
    case Query::Kind::kReach:
      if (step.nodes.size() != 1) {
        return Status::InvalidArgument("reach step with " +
                                       std::to_string(step.nodes.size()) +
                                       " nodes" + at);
      }
      break;
    case Query::Kind::kReachBatch:
      if (step.batch_answers.size() != step.nodes.size()) {
        return Status::InvalidArgument("batch step with mismatched answer "
                                       "count" + at);
      }
      break;
    case Query::Kind::kChoice:
      if (step.choice < -1 ||
          step.choice >= static_cast<int>(step.nodes.size())) {
        return Status::OutOfRange("choice answer outside [-1, " +
                                  std::to_string(step.nodes.size()) + ")" +
                                  at);
      }
      break;
    case Query::Kind::kDone:
      return Status::InvalidArgument("transcript contains a 'done' step" +
                                     at);
  }
  return Status::OK();
}

/// Applies a step whose question the session's planner just reproduced —
/// the exact-replay path (identical to the live Answer switch).
Status ApplyMatchedStep(SearchSession& search, const TranscriptStep& step) {
  switch (step.kind) {
    case Query::Kind::kReach:
      search.OnReach(step.nodes[0], step.yes);
      return Status::OK();
    case Query::Kind::kReachBatch:
      // A crafted blob may contain an inconsistent round the live engine
      // would have rejected; reject it here the same way.
      return search.TryOnReachBatch(step.nodes, step.batch_answers);
    case Query::Kind::kChoice:
      search.OnChoice(step.nodes, step.choice);
      return Status::OK();
    case Query::Kind::kDone:
      break;  // excluded by ValidateStepShape
  }
  AIGS_CHECK(false);
  return Status::Internal("unreachable");
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), sessions_(std::move(options.sessions)) {}

StatusOr<std::shared_ptr<const CatalogSnapshot>> Engine::Publish(
    CatalogConfig config) {
  std::shared_ptr<const CatalogSnapshot> snapshot;
  std::shared_ptr<PlanCache> cache;
  std::shared_ptr<const CatalogSnapshot> old_snapshot;
  std::shared_ptr<PlanCache> old_cache;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    AIGS_ASSIGN_OR_RETURN(
        snapshot, CatalogSnapshot::Build(std::move(config), next_epoch_));
    ++next_epoch_;
    old_snapshot = std::exchange(snapshot_, snapshot);
    // A fresh epoch gets a fresh plan trie; the old one is retained once
    // (the warm-seed source and the `warm` REPL command) and then retires
    // with its snapshot's refcount — a publish invalidates every stale plan
    // without any flush or version check on the hot path.
    old_cache = std::exchange(
        plan_cache_, options_.plan_cache.enabled
                         ? std::make_shared<PlanCache>(options_.plan_cache)
                         : nullptr);
    previous_snapshot_ = old_snapshot;
    previous_plan_cache_ = old_cache;
    cache = plan_cache_;
  }
  // Both follow-ups run outside the snapshot mutex: they only touch the
  // captured shared_ptrs and per-session mutexes, so concurrent traffic
  // (and even a concurrent Publish) proceeds.
  if (cache != nullptr && old_cache != nullptr &&
      options_.plan_cache.warm_publish) {
    WarmSeed(*snapshot, *cache, *old_cache, options_.plan_cache.warm_budget);
  }
  if (options_.migration.sweep_on_publish && old_snapshot != nullptr) {
    MigrateIdleSessions();
  }
  return snapshot;
}

std::shared_ptr<const CatalogSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Engine::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_ == nullptr ? 0 : snapshot_->epoch();
}

void Engine::CurrentEpochState(
    std::shared_ptr<const CatalogSnapshot>* snap,
    std::shared_ptr<PlanCache>* cache) const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  *snap = snapshot_;
  *cache = plan_cache_;
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::BuildSession(
    std::shared_ptr<const CatalogSnapshot> snap,
    std::shared_ptr<PlanCache> cache, const std::string& policy_spec) {
  AIGS_ASSIGN_OR_RETURN(const Policy* policy, snap->PolicyFor(policy_spec));
  auto session = std::make_shared<ServiceSession>();
  session->epoch.store(snap->epoch(), std::memory_order_relaxed);
  session->snapshot = std::move(snap);
  session->policy_spec = policy_spec;
  session->policy = policy;
  session->plan_cache = std::move(cache);
  session->search = policy->NewSession();
  session->plan_prefix = session->plan_cache != nullptr
                             ? session->plan_cache->RootFor(policy_spec)
                             : kNoPlanPrefix;
  return session;
}

StatusOr<SessionId> Engine::Open(const std::string& policy_spec) {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), policy_spec));
  return sessions_.Insert(std::move(session));
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::FindSession(SessionId id) {
  return sessions_.Find(id);
}

Query Engine::ResolvePending(ServiceSession& session) {
  if (session.has_pending) {
    return session.pending;
  }
  Query query;
  PlanCache* cache = session.plan_cache.get();
  if (cache != nullptr &&
      session.transcript.size() <= cache->options().max_depth) {
    if (std::optional<Query> hit = cache->Lookup(session.plan_prefix)) {
      // Warm path: the question was planned once by some session at this
      // (policy, transcript) prefix — or pre-seeded at publish time — so
      // Ask skips the planner here. (The candidate-state policies skip it
      // entirely; the phase-automata baselines still settle their derived
      // state inside the applier — their planners are O(children) cheap,
      // and the cache exists for the expensive middle-point planners.)
      query = *std::move(hit);
    } else {
      query = session.search->Next();
      cache->Insert(session.plan_prefix, query);
    }
  } else {
    query = session.search->Next();
  }
  session.pending = query;
  session.has_pending = true;
  return query;
}

StatusOr<Query> Engine::Ask(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  session->reask_after_migration = false;
  return ResolvePending(*session);
}

Status Engine::Answer(SessionId id, const SessionAnswer& answer) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  if (session->reask_after_migration) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " was migrated to a new epoch after its question was shown; ask "
        "again before answering");
  }
  const Query query = ResolvePending(*session);
  if (query.kind == Query::Kind::kDone) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " already identified its target; nothing to answer");
  }
  // Service-boundary guard for the SearchSession default-fatal paths: a
  // mismatched answer kind is a client error, not a process abort.
  if (answer.kind != query.kind) {
    return Status::InvalidArgument(
        std::string("pending question expects a ") + KindName(query.kind) +
        " answer, got " + KindName(answer.kind));
  }

  TranscriptStep step;
  step.kind = query.kind;
  switch (query.kind) {
    case Query::Kind::kReach:
      step.nodes = {query.node};
      step.yes = answer.yes;
      session->search->OnReach(query.node, answer.yes);
      break;
    case Query::Kind::kReachBatch:
      if (answer.batch.size() != query.choices.size()) {
        return Status::InvalidArgument(
            "batch answer has " + std::to_string(answer.batch.size()) +
            " entries; the pending batch asks " +
            std::to_string(query.choices.size()) + " questions");
      }
      step.nodes = query.choices;
      step.batch_answers = answer.batch;
      // Content validation too: a mutually inconsistent round (it would
      // eliminate every candidate) bounces with InvalidArgument and leaves
      // the question pending — never the fatal in-process path.
      AIGS_RETURN_NOT_OK(
          session->search->TryOnReachBatch(query.choices, answer.batch));
      break;
    case Query::Kind::kChoice:
      if (answer.choice < -1 ||
          answer.choice >= static_cast<int>(query.choices.size())) {
        return Status::OutOfRange(
            "choice answer " + std::to_string(answer.choice) +
            " outside [-1, " + std::to_string(query.choices.size()) + ")");
      }
      step.nodes = query.choices;
      step.choice = answer.choice;
      session->search->OnChoice(query.choices, answer.choice);
      break;
    case Query::Kind::kDone:
      AIGS_CHECK(false);  // handled above
  }
  // Advance the rolling plan key by this step's trie edge (one O(edge)
  // intern, depth-independent) and drop the consumed plan. Past the depth
  // cap the key is never read again, so stop maintaining it.
  if (session->plan_cache != nullptr &&
      session->transcript.size() < session->plan_cache->options().max_depth) {
    std::string edge;
    SessionCodec::AppendStepKey(step, &edge);
    session->plan_prefix =
        session->plan_cache->Advance(session->plan_prefix, edge);
  }
  session->has_pending = false;
  session->transcript.push_back(std::move(step));
  return Status::OK();
}

StatusOr<std::string> Engine::Save(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  SerializedSession out;
  out.fingerprint = session->snapshot->fingerprint();
  out.hierarchy_fingerprint = session->snapshot->hierarchy_fingerprint();
  out.epoch = session->snapshot->epoch();
  out.policy_spec = session->policy_spec;
  out.steps = session->transcript;
  return SessionCodec::Encode(out);
}

Status Engine::ReplayTranscript(ServiceSession& session,
                                std::vector<TranscriptStep> steps,
                                ReplayMode mode, std::size_t max_divergence,
                                std::size_t* divergent_steps) {
  const std::size_t num_nodes = session.snapshot->hierarchy().NumNodes();
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    TranscriptStep& step = steps[i];
    AIGS_RETURN_NOT_OK(ValidateStepShape(step, num_nodes, i));
    const Query planned = session.search->Next();
    // The replay already paid the planner; memoize its answer so restores
    // and migrations warm the trie exactly like Ask's miss path would.
    // Sound even past a divergence: the trie key is the actual transcript
    // prefix, and the planner is a pure function of it.
    if (session.plan_cache != nullptr &&
        session.transcript.size() <=
            session.plan_cache->options().max_depth) {
      session.plan_cache->Insert(session.plan_prefix, planned);
    }
    if (QuestionMatchesStep(planned, step)) {
      step.diverged = false;  // this epoch's planner reproduces it after all
      AIGS_RETURN_NOT_OK(ApplyMatchedStep(*session.search, step));
    } else if (step.diverged) {
      // Recorded divergence from an earlier migration: the step was never
      // this epoch's plan, so fold it observed in BOTH modes (an exact
      // Resume of a migrated session must round-trip) without charging the
      // fresh-divergence budget it already passed once.
      AIGS_RETURN_NOT_OK(session.search->TryApplyObserved(step));
    } else if (mode == ReplayMode::kExact) {
      return Status::Internal(
          "transcript replay diverged at step " + std::to_string(i) +
          ": the snapshot no longer reproduces the saved question sequence");
    } else {
      ++divergent;
      if (divergent > max_divergence) {
        return Status::FailedPrecondition(
            "migration divergence budget (" +
            std::to_string(max_divergence) + ") exceeded at step " +
            std::to_string(i) + " of " + std::to_string(steps.size()));
      }
      step.diverged = true;
      // The planner would ask something else here; fold the recorded
      // answer through the policy's observed-step applier instead.
      AIGS_RETURN_NOT_OK(session.search->TryApplyObserved(step));
    }
    if (session.plan_cache != nullptr &&
        session.transcript.size() <
            session.plan_cache->options().max_depth) {
      std::string edge;
      SessionCodec::AppendStepKey(step, &edge);
      session.plan_prefix =
          session.plan_cache->Advance(session.plan_prefix, edge);
    }
    session.transcript.push_back(std::move(step));
  }
  if (divergent_steps != nullptr) {
    // Surface the total divergence of the resulting transcript (recorded
    // flags that persisted plus fresh ones); the budget above only charges
    // the fresh ones.
    *divergent_steps = 0;
    for (const TranscriptStep& step : session.transcript) {
      *divergent_steps += step.diverged ? 1 : 0;
    }
  }
  return Status::OK();
}

StatusOr<SessionId> Engine::Resume(const std::string& serialized) {
  AIGS_ASSIGN_OR_RETURN(const SerializedSession saved,
                        SessionCodec::Decode(serialized));
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  if (saved.fingerprint != snap->fingerprint()) {
    return Status::FailedPrecondition(
        "saved session was recorded on a different catalog (fingerprint "
        "mismatch); replay would not be exact — use Migrate to replay onto "
        "the current epoch with divergence tolerated");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), saved.policy_spec));
  // Replay with verification: determinism (Definition 6) guarantees the
  // fresh session regenerates the recorded questions in order; any
  // divergence means the catalog or policy changed under us.
  AIGS_RETURN_NOT_OK(ReplayTranscript(*session, saved.steps,
                                      ReplayMode::kExact,
                                      /*max_divergence=*/0, nullptr));
  return sessions_.Insert(std::move(session));
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::MigrateDecoded(
    const SerializedSession& saved, std::size_t* divergent_steps) {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  // Migration tolerates changed weights, never a changed node space: a v1
  // blob carries no hierarchy digest, so it only qualifies when its full
  // fingerprint still matches (the exact case).
  if (saved.hierarchy_fingerprint != 0) {
    if (saved.hierarchy_fingerprint != snap->hierarchy_fingerprint()) {
      return Status::FailedPrecondition(
          "saved session was recorded on a different hierarchy; its node "
          "ids do not transfer");
    }
  } else if (saved.fingerprint != snap->fingerprint()) {
    return Status::FailedPrecondition(
        "saved session predates hierarchy fingerprints (aigs-session/1) "
        "and its catalog fingerprint no longer matches");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), saved.policy_spec));
  AIGS_RETURN_NOT_OK(ReplayTranscript(
      *session, saved.steps, ReplayMode::kTolerant,
      options_.migration.max_divergence, divergent_steps));
  return session;
}

StatusOr<MigrateResult> Engine::Migrate(const std::string& serialized) {
  AIGS_ASSIGN_OR_RETURN(const SerializedSession saved,
                        SessionCodec::Decode(serialized));
  MigrateResult result;
  result.from_epoch = saved.epoch;
  result.steps = saved.steps.size();
  auto session = MigrateDecoded(saved, &result.divergent_steps);
  if (!session.ok()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return session.status();
  }
  result.to_epoch = (*session)->snapshot->epoch();
  result.id = sessions_.Insert(*std::move(session));
  sessions_migrated_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

StatusOr<MigrateResult> Engine::MigrateLocked(SessionId id,
                                              ServiceSession& session) {
  MigrateResult result;
  result.id = id;
  result.from_epoch = session.snapshot->epoch();
  result.steps = session.transcript.size();

  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  AIGS_CHECK(snap != nullptr);  // the session exists, so Publish happened
  result.to_epoch = snap->epoch();
  if (snap.get() == session.snapshot.get()) {
    result.to_epoch = result.from_epoch;
    return result;  // already current: zero-step no-op
  }
  if (session.snapshot->hierarchy_fingerprint() !=
      snap->hierarchy_fingerprint()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "current epoch runs a different hierarchy; node ids do not "
        "transfer");
  }
  // Build and replay into a private scratch session; the live one is only
  // touched on success, so failures leave it intact on its old epoch.
  auto rebuilt = BuildSession(std::move(snap), std::move(cache),
                              session.policy_spec);
  if (!rebuilt.ok()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return rebuilt.status();
  }
  if (const Status replay = ReplayTranscript(
          **rebuilt, session.transcript, ReplayMode::kTolerant,
          options_.migration.max_divergence, &result.divergent_steps);
      !replay.ok()) {
    migration_failures_.fetch_add(1, std::memory_order_relaxed);
    return replay;
  }
  ServiceSession& fresh = **rebuilt;
  const bool had_pending = session.has_pending;
  session.snapshot = std::move(fresh.snapshot);
  session.policy = fresh.policy;
  session.plan_cache = std::move(fresh.plan_cache);
  session.search = std::move(fresh.search);
  session.transcript = std::move(fresh.transcript);
  session.plan_prefix = fresh.plan_prefix;
  session.has_pending = false;
  // A question the client already saw may differ on the new epoch; force a
  // re-Ask instead of silently applying their answer to a new question.
  session.reask_after_migration = had_pending;
  session.epoch.store(result.to_epoch, std::memory_order_relaxed);
  sessions_migrated_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

StatusOr<MigrateResult> Engine::Migrate(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  return MigrateLocked(id, *session);
}

MigrateSweepStats Engine::MigrateIdleSessions() {
  MigrateSweepStats stats;
  std::shared_ptr<const CatalogSnapshot> current;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&current, &cache);
  if (current == nullptr) {
    return stats;
  }
  for (auto& [id, session] : sessions_.SnapshotSessions()) {
    if (session == nullptr) {
      continue;
    }
    ++stats.scanned;
    std::unique_lock<std::mutex> lock(session->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      ++stats.skipped_busy;  // another operation holds it: not idle
      continue;
    }
    if (session->snapshot.get() == current.get()) {
      ++stats.already_current;
      continue;
    }
    if (session->has_pending) {
      // The client owes an answer to a question it has already been shown;
      // migrating now would change that question under them. Leave the
      // session pinned — it migrates after its next answer, or drains.
      ++stats.skipped_busy;
      continue;
    }
    if (const auto result = MigrateLocked(id, *session); result.ok()) {
      ++stats.migrated;
      stats.divergent_steps += result->divergent_steps;
    } else {
      ++stats.failed;
    }
  }
  return stats;
}

std::size_t Engine::WarmSeed(const CatalogSnapshot& snap, PlanCache& target,
                             const PlanCache& source, std::size_t budget) {
  const std::size_t num_nodes = snap.hierarchy().NumNodes();
  std::size_t seeded = 0;
  for (const HotPrefix& prefix : source.HottestPrefixes(budget)) {
    const auto policy = snap.PolicyFor(prefix.policy_spec);
    if (!policy.ok()) {
      continue;  // the new epoch no longer serves this spec
    }
    std::unique_ptr<SearchSession> search = (*policy)->NewSession();
    PlanPrefixId at = target.RootFor(prefix.policy_spec);
    bool replayed = true;
    for (const std::string& line : prefix.step_lines) {
      auto step = SessionCodec::ParseStepLine(line);
      if (!step.ok() || !ValidateStepShape(*step, num_nodes, 0).ok()) {
        replayed = false;  // e.g. a node the new snapshot no longer has
        break;
      }
      const Query planned = search->Next();
      target.Insert(at, planned, /*seeded=*/true);
      if (QuestionMatchesStep(planned, *step)) {
        if (!ApplyMatchedStep(*search, *step).ok()) {
          replayed = false;
          break;
        }
      } else if (!search->TryApplyObserved(*step).ok()) {
        // The prefix no longer folds onto the new snapshot; the plans
        // inserted so far are still exact, only the tail is abandoned.
        replayed = false;
        break;
      }
      at = target.Advance(at, line);
    }
    if (replayed) {
      target.Insert(at, search->Next(), /*seeded=*/true);
      ++seeded;  // only fully replayed prefixes count toward the report
    }
  }
  return seeded;
}

StatusOr<std::size_t> Engine::Warm() {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  std::shared_ptr<PlanCache> source;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snap = snapshot_;
    cache = plan_cache_;
    source = previous_plan_cache_;
  }
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  if (cache == nullptr) {
    return Status::FailedPrecondition("the plan cache is disabled");
  }
  if (source == nullptr) {
    return Status::FailedPrecondition(
        "no previous epoch's trie to seed from (publish at least twice)");
  }
  return WarmSeed(*snap, *cache, *source,
                  options_.plan_cache.warm_budget);
}

Status Engine::Close(SessionId id) { return sessions_.Erase(id); }

std::shared_ptr<PlanCache> Engine::plan_cache() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return plan_cache_;
}

EngineStats Engine::Stats() const {
  EngineStats stats;
  std::shared_ptr<PlanCache> cache;
  std::shared_ptr<PlanCache> previous_cache;
  std::uint64_t previous_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    stats.epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch();
    cache = plan_cache_;
    previous_cache = previous_plan_cache_;
    previous_epoch =
        previous_snapshot_ == nullptr ? 0 : previous_snapshot_->epoch();
  }
  stats.sessions_by_epoch = sessions_.SessionsByEpoch();
  for (const auto& [epoch, count] : stats.sessions_by_epoch) {
    stats.live_sessions += count;
  }
  if (cache != nullptr) {
    stats.plan_cache_enabled = true;
    stats.plan_cache = cache->stats();
    stats.plan_cache_by_epoch.emplace(stats.epoch, stats.plan_cache);
  }
  if (previous_cache != nullptr) {
    stats.plan_cache_by_epoch.emplace(previous_epoch,
                                      previous_cache->stats());
  }
  stats.sessions_migrated =
      sessions_migrated_.load(std::memory_order_relaxed);
  stats.migration_failures =
      migration_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aigs
