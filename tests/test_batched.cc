// Batched greedy extension (§III-E): correctness across hierarchy shapes and
// the rounds-vs-questions trade-off.
#include "core/batched_greedy.h"

#include <gtest/gtest.h>

#include "core/greedy_naive.h"
#include "eval/evaluator.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::MustDist;

/// Runs every target through a batched policy, returning per-target
/// (questions, rounds).
struct BatchedRun {
  std::vector<std::uint64_t> questions;
  std::vector<std::uint64_t> rounds;
};

BatchedRun RunBatchedAllTargets(const BatchedGreedyPolicy& policy,
                                const Hierarchy& h) {
  BatchedRun out;
  out.questions.resize(h.NumNodes());
  out.rounds.resize(h.NumNodes());
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle);
    AIGS_CHECK(r.target == target);
    out.questions[target] = r.reach_queries;
    out.rounds[target] = r.interaction_rounds;
  }
  return out;
}

TEST(BatchedGreedy, IdentifiesEveryTargetOnTreesAndDags) {
  Rng rng(1);
  for (int round = 0; round < 12; ++round) {
    const bool dag = rng.Bernoulli(0.5);
    const std::size_t n = 2 + rng.UniformInt(40);
    const Hierarchy h = MustBuild(dag ? RandomDag(n, rng, 0.4)
                                      : RandomTree(n, rng));
    const Distribution dist = UniformRandomDistribution(h.NumNodes(), rng);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
      BatchedGreedyPolicy policy(h, dist,
                                 BatchedGreedyOptions{.questions_per_round = k});
      RunBatchedAllTargets(policy, h);  // fatally checks identification
    }
  }
}

TEST(BatchedGreedy, KOneMatchesSequentialGreedyCost) {
  // With one question per round and positive weights, the batched policy
  // picks exactly the sequential middle point each time.
  Rng rng(2);
  for (int round = 0; round < 8; ++round) {
    const Hierarchy h = MustBuild(RandomTree(2 + rng.UniformInt(30), rng));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(99);
    }
    const Distribution dist = MustDist(w);
    BatchedGreedyPolicy batched(h, dist,
                                BatchedGreedyOptions{.questions_per_round = 1});
    GreedyNaivePolicy sequential(h, dist);
    const BatchedRun batched_run = RunBatchedAllTargets(batched, h);
    const auto sequential_costs = testing::RunAllTargets(sequential, h);
    for (NodeId t = 0; t < h.NumNodes(); ++t) {
      EXPECT_EQ(batched_run.questions[t], sequential_costs[t]) << t;
      EXPECT_EQ(batched_run.rounds[t], sequential_costs[t]) << t;
    }
  }
}

TEST(BatchedGreedy, LargerBatchesNeedFewerRounds) {
  Rng rng(3);
  const Hierarchy h = MustBuild(RandomTree(120, rng));
  const Distribution dist = ExponentialRandomDistribution(120, rng);

  auto expected_rounds = [&](std::size_t k) {
    BatchedGreedyPolicy policy(h, dist,
                               BatchedGreedyOptions{.questions_per_round = k});
    const BatchedRun run = RunBatchedAllTargets(policy, h);
    long double total = 0;
    for (NodeId t = 0; t < h.NumNodes(); ++t) {
      total += static_cast<long double>(dist.WeightOf(t)) *
               static_cast<long double>(run.rounds[t]);
    }
    return static_cast<double>(total /
                               static_cast<long double>(dist.Total()));
  };
  const double rounds_k1 = expected_rounds(1);
  const double rounds_k4 = expected_rounds(4);
  const double rounds_k8 = expected_rounds(8);
  EXPECT_LT(rounds_k4, rounds_k1);
  EXPECT_LE(rounds_k8, rounds_k4 + 1e-9);
  // Batching k questions cannot beat the information-theoretic factor k.
  EXPECT_GE(rounds_k4 * 4 + 1e-9, rounds_k1);
}

TEST(BatchedGreedy, BatchingCostsMoreQuestionsButNotAbsurdlyMore) {
  Rng rng(4);
  const Hierarchy h = MustBuild(RandomTree(150, rng));
  Rng dist_rng(5);
  const Distribution dist = ZipfRandomDistribution(150, 2.0, dist_rng);

  auto expected_questions = [&](std::size_t k) {
    BatchedGreedyPolicy policy(h, dist,
                               BatchedGreedyOptions{.questions_per_round = k});
    const BatchedRun run = RunBatchedAllTargets(policy, h);
    long double total = 0;
    for (NodeId t = 0; t < h.NumNodes(); ++t) {
      total += static_cast<long double>(dist.WeightOf(t)) *
               static_cast<long double>(run.questions[t]);
    }
    return static_cast<double>(total /
                               static_cast<long double>(dist.Total()));
  };
  const double q1 = expected_questions(1);
  const double q4 = expected_questions(4);
  EXPECT_GE(q4 + 1e-9, q1);      // batches waste some questions...
  EXPECT_LE(q4, 4 * q1 + 4);     // ...but not more than the k factor
}

TEST(BatchedGreedy, WorksWithZeroWeightNodes) {
  Rng rng(6);
  const Hierarchy h = MustBuild(RandomDag(25, rng, 0.5));
  std::vector<Weight> w(h.NumNodes(), 0);
  w[3] = 10;  // single heavy node; everything else zero weight
  const Distribution dist = MustDist(w);
  BatchedGreedyPolicy policy(h, dist,
                             BatchedGreedyOptions{.questions_per_round = 3});
  RunBatchedAllTargets(policy, h);
}

TEST(BatchedGreedy, RunnerCountsRoundsForAllPolicies) {
  // Sequential policies report one round per question.
  Rng rng(7);
  const Hierarchy h = MustBuild(RandomTree(30, rng));
  const Distribution dist = EqualDistribution(30);
  GreedyNaivePolicy sequential(h, dist);
  ExactOracle oracle(h.reach(), 17);
  auto session = sequential.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.interaction_rounds, r.reach_queries);
}

}  // namespace
}  // namespace aigs
