#include "data/builtin.h"

namespace aigs {

Digraph BuildVehicleHierarchy(VehicleNodes* nodes) {
  Digraph g;
  VehicleNodes ids;
  ids.vehicle = g.AddNode("Vehicle");
  ids.car = g.AddNode("Car");
  ids.nissan = g.AddNode("Nissan");
  ids.honda = g.AddNode("Honda");
  ids.mercedes = g.AddNode("Mercedes");
  ids.maxima = g.AddNode("Maxima");
  ids.sentra = g.AddNode("Sentra");
  g.AddEdge(ids.vehicle, ids.car);
  // Child order fixes the deterministic TopDown narration of Example 1.
  g.AddEdge(ids.car, ids.nissan);
  g.AddEdge(ids.car, ids.honda);
  g.AddEdge(ids.car, ids.mercedes);
  g.AddEdge(ids.nissan, ids.maxima);
  g.AddEdge(ids.nissan, ids.sentra);
  AIGS_CHECK(g.Finalize().ok());
  if (nodes != nullptr) {
    *nodes = ids;
  }
  return g;
}

Distribution VehicleDistribution() {
  // Order matches BuildVehicleHierarchy's node creation order.
  auto d = Distribution::FromWeights({4, 2, 8, 4, 2, 40, 40});
  AIGS_CHECK(d.ok());
  return *std::move(d);
}

Digraph BuildFig2Hierarchy() {
  Digraph g;
  for (int label = 1; label <= 7; ++label) {
    g.AddNode(std::to_string(label));
  }
  g.AddEdge(0, 1);  // 1 -> 2
  g.AddEdge(1, 2);  // 2 -> 3
  g.AddEdge(1, 3);  // 2 -> 4
  g.AddEdge(1, 4);  // 2 -> 5
  g.AddEdge(2, 5);  // 3 -> 6
  g.AddEdge(2, 6);  // 3 -> 7
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

Digraph BuildFig3Hierarchy() {
  Digraph g;
  for (int label = 1; label <= 4; ++label) {
    g.AddNode(std::to_string(label));
  }
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  AIGS_CHECK(g.Finalize().ok());
  return g;
}

CostModel Fig3CostModel() {
  return CostModel({1, 1, 5, 1});
}

}  // namespace aigs
