#include "core/greedy_tree.h"

#include <algorithm>
#include <utility>

#include "util/node_map.h"

namespace aigs {
namespace {

/// |2a - b| in unsigned arithmetic, computed as |a - (b - a)| so it stays
/// overflow-free for any a <= b (2a can exceed 2^64 on kRealScale-scaled
/// distributions over large catalogs).
Weight SplitDiff(Weight subtree, Weight total) {
  const Weight rest = total - subtree;
  return subtree > rest ? subtree - rest : rest - subtree;
}

/// True iff 2a > b without forming 2a (a <= b).
bool MoreThanHalf(Weight subtree, Weight total) {
  return subtree > total - subtree;
}

/// One search session implementing the Algorithm 4 descent over a
/// TreeSearchState overlay.
class GreedyTreeSession final : public SearchSession {
 public:
  GreedyTreeSession(const TreeWeightBase& base,
                    GreedyTreeOptions::ChildScan child_scan)
      : state_(base), child_scan_(child_scan) {}

  Query PlanQuestion() const override {
    if (state_.CandidateCount() == 1) {
      return Query::Done(state_.Target());
    }
    return Query::ReachQuery(SelectQueryNode());
  }

  void ApplyReach(NodeId q, bool yes) override {
    if (yes) {
      state_.ApplyYes(q);
    } else {
      state_.ApplyNo(q);
      // Removal invalidates cached heap entries along the ancestor path;
      // the lazy heap self-heals by re-checking weights on pop.
    }
  }

  // Observed fold (cross-epoch migration): normalize the question against
  // the tree geometry before touching the state, so a question another
  // epoch's planner picked never trips the descend-only invariants.
  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    const Tree& tree = state_.base().tree();
    const NodeId q = step.nodes[0];
    if (q >= tree.NumNodes()) {
      return Status::OutOfRange("observed question node " +
                                std::to_string(q) +
                                " outside the hierarchy");
    }
    const NodeId r = state_.root();
    if (q == r || tree.InSubtree(q, r)) {
      // q is the root or an ancestor: yes is already known, no contradicts
      // the earlier yes that moved the root here.
      return step.yes ? Status::OK()
                      : Status::InvalidArgument(
                            "observed no for ancestor node " +
                            std::to_string(q) +
                            " contradicts the transcript so far");
    }
    if (!tree.InSubtree(r, q)) {
      // Disjoint subtree: a tree target under r is never under q, so yes
      // is inconsistent and no is free.
      return step.yes ? Status::InvalidArgument(
                            "observed yes for node " + std::to_string(q) +
                            " outside the candidate subtree")
                      : Status::OK();
    }
    // q lies strictly under the root; check whether an earlier no already
    // removed it (walk the ancestor chain up to r — O(depth), replay only).
    bool removed = false;
    for (NodeId a = q; a != r && a != kInvalidNode; a = tree.Parent(a)) {
      if (state_.IsRemovedTop(a)) {
        removed = true;
        break;
      }
    }
    if (removed) {
      return step.yes ? Status::InvalidArgument(
                            "observed yes for node " + std::to_string(q) +
                            " inside an eliminated subtree")
                      : Status::OK();  // already known
    }
    if (step.yes) {
      state_.ApplyYes(q);
    } else {
      // Removing T_q never empties the candidates: the root answered yes,
      // so it stays a candidate outside T_q.
      state_.ApplyNo(q);
    }
    return Status::OK();
  }

 private:
  // Algorithm 4 lines 4–9: walk down the weighted heavy path while the
  // current node still dominates half the remaining weight; return the
  // better of the last two nodes visited. Never returns the current root
  // (its answer is known to be yes).
  NodeId SelectQueryNode() const {
    const NodeId r = state_.root();
    const Weight total = state_.SubtreeWeight(r);
    NodeId u = kInvalidNode;
    NodeId v = r;
    NodeId first_child = kInvalidNode;
    while (MoreThanHalf(state_.SubtreeWeight(v), total) &&
           !IsSessionLeaf(v)) {
      u = v;
      v = MaxWeightAliveChild(v);
      AIGS_DCHECK(v != kInvalidNode);
      if (first_child == kInvalidNode) {
        first_child = v;
      }
    }
    if (u == kInvalidNode) {
      // Zero-weight remainder (possible only when the distribution assigns
      // no mass to the surviving candidates): any alive child keeps the
      // search progressing and costs nothing in expectation.
      return MaxWeightAliveChild(r);
    }
    const NodeId q =
        SplitDiff(state_.SubtreeWeight(u), total) <=
                SplitDiff(state_.SubtreeWeight(v), total)
            ? u
            : v;
    // Querying the root is a wasted question; fall to its heavy child.
    return q == r ? first_child : q;
  }

  // A node is a leaf of the candidate tree when no descendant survives.
  bool IsSessionLeaf(NodeId v) const { return state_.SubtreeSize(v) == 1; }

  NodeId MaxWeightAliveChild(NodeId v) const {
    return child_scan_ == GreedyTreeOptions::ChildScan::kLinear
               ? MaxChildLinear(v)
               : MaxChildHeap(v);
  }

  NodeId MaxChildLinear(NodeId v) const {
    const Tree& tree = state_.base().tree();
    NodeId best = kInvalidNode;
    Weight best_weight = 0;
    for (const NodeId c : tree.Children(v)) {
      if (state_.IsRemovedTop(c)) {
        continue;
      }
      const Weight w = state_.SubtreeWeight(c);
      if (best == kInvalidNode || w > best_weight) {
        best = c;
        best_weight = w;
      }
    }
    return best;
  }

  // Lazy max-heap per visited node: entries carry the weight observed at
  // push time; stale tops (weights only ever decrease) are re-pushed with
  // their current weight until the top is fresh.
  NodeId MaxChildHeap(NodeId v) const {
    auto& heap = heaps_[v];
    if (!heap.initialized) {
      const Tree& tree = state_.base().tree();
      for (const NodeId c : tree.Children(v)) {
        heap.entries.push_back({state_.SubtreeWeight(c), c});
      }
      std::make_heap(heap.entries.begin(), heap.entries.end());
      heap.initialized = true;
    }
    auto& entries = heap.entries;
    while (!entries.empty()) {
      const auto [cached_weight, c] = entries.front();
      if (state_.IsRemovedTop(c)) {
        std::pop_heap(entries.begin(), entries.end());
        entries.pop_back();
        continue;
      }
      const Weight current = state_.SubtreeWeight(c);
      if (current == cached_weight) {
        return c;
      }
      std::pop_heap(entries.begin(), entries.end());
      entries.back() = {current, c};
      std::push_heap(entries.begin(), entries.end());
    }
    return kInvalidNode;
  }

  struct LazyHeap {
    bool initialized = false;
    std::vector<std::pair<Weight, NodeId>> entries;
  };

  TreeSearchState state_;
  GreedyTreeOptions::ChildScan child_scan_;
  // Planner memoization: lazily-built per-node max-heaps over child subtree
  // weights. Self-healing (stale tops re-check current weights on pop), so
  // the heaps are derived state, never a source of nondeterminism.
  mutable NodeMap<LazyHeap> heaps_;
};

}  // namespace

GreedyTreePolicy::GreedyTreePolicy(const Hierarchy& hierarchy,
                                   const Distribution& dist,
                                   GreedyTreeOptions options)
    : hierarchy_(&hierarchy),
      options_(options),
      base_(hierarchy.tree(), options.use_rounded_weights
                                  ? RoundWeights(dist, options.rounding)
                                  : dist.weights()) {
  AIGS_CHECK(hierarchy.is_tree());
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
}

std::unique_ptr<SearchSession> GreedyTreePolicy::NewSession() const {
  return std::make_unique<GreedyTreeSession>(base_, options_.child_scan);
}

}  // namespace aigs
