// CatalogSnapshot — the immutable, refcounted unit of catalog state the
// service layer serves searches from.
//
// A snapshot bundles one (hierarchy, distribution[, cost model]) triple with
// the registry-constructed policies named in its config. All O(n)
// precomputation — the hierarchy's ReachabilityIndex, each policy's shared
// base (SplitWeightBase / TreeWeightBase / ReachWeightBase) — happens once
// at Build() time, so opening a search session against a snapshot is O(1).
//
// Snapshots are published through Engine epochs: an online-learning weight
// update builds a *new* snapshot and swaps the engine's current pointer;
// live sessions keep their shared_ptr and finish on the epoch they started
// on, so publication never pauses traffic. The hierarchy itself is held by
// shared_ptr and is typically shared across epochs (only the distribution
// changes).
#ifndef AIGS_SERVICE_CATALOG_SNAPSHOT_H_
#define AIGS_SERVICE_CATALOG_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

class ThreadPool;

/// Everything needed to build a snapshot. `hierarchy` is required;
/// `cost_model` only when a policy spec needs one (cost_sensitive).
struct CatalogConfig {
  std::shared_ptr<const Hierarchy> hierarchy;
  Distribution distribution;
  std::shared_ptr<const CostModel> cost_model;
  /// PolicyRegistry specs to prebuild ("greedy", "batched:k=4", ...).
  /// Sessions can only be opened on prebuilt specs — per-request policy
  /// construction would reintroduce the O(n) setup the snapshot exists to
  /// amortize.
  std::vector<std::string> policy_specs;
  /// Optional pool to build the per-spec policies on concurrently (each
  /// policy's O(n) base precomputation is independent). Borrowed for the
  /// duration of Build() only; null builds serially. Engine::Publish fills
  /// this with its own session pool when the caller left it null.
  ThreadPool* build_pool = nullptr;
};

/// Wraps a borrowed hierarchy in a non-owning shared_ptr for CatalogConfig.
/// The referent must outlive every snapshot built from the config.
std::shared_ptr<const Hierarchy> UnownedHierarchy(const Hierarchy& hierarchy);

/// Immutable catalog state at one epoch. Thread-safe by construction: all
/// members are const after Build().
class CatalogSnapshot {
 public:
  /// Constructs every configured policy through the global PolicyRegistry.
  /// Fails on an invalid spec, a distribution/hierarchy size mismatch, or a
  /// cost-aware spec without a cost model.
  static StatusOr<std::shared_ptr<const CatalogSnapshot>> Build(
      CatalogConfig config, std::uint64_t epoch);

  std::uint64_t epoch() const { return epoch_; }
  const Hierarchy& hierarchy() const { return *config_.hierarchy; }
  const Distribution& distribution() const { return config_.distribution; }
  const CostModel* cost_model() const { return config_.cost_model.get(); }

  /// The prebuilt policy for `spec`; NotFound (listing the prebuilt specs)
  /// for anything else.
  StatusOr<const Policy*> PolicyFor(const std::string& spec) const;

  /// The prebuilt specs, sorted.
  std::vector<std::string> policy_specs() const;

  /// FNV-1a digest of the hierarchy structure and the distribution weights.
  /// Saved sessions bind to this: a transcript only replays exactly against
  /// the catalog it was recorded on (policy determinism, Definition 6).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Digest of the hierarchy structure alone. Cross-epoch migration checks
  /// this instead of fingerprint(): replay-with-divergence is sound under
  /// changed WEIGHTS (answers are facts about the target), but a changed
  /// node space makes recorded node ids meaningless.
  std::uint64_t hierarchy_fingerprint() const {
    return hierarchy_fingerprint_;
  }

 private:
  CatalogSnapshot() = default;

  CatalogConfig config_;
  std::uint64_t epoch_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t hierarchy_fingerprint_ = 0;
  std::map<std::string, std::unique_ptr<Policy>> policies_;
};

}  // namespace aigs

#endif  // AIGS_SERVICE_CATALOG_SNAPSHOT_H_
