// Runtime-dispatched SIMD kernels for the word-parallel primitives every
// Ask bottoms out in: AND/ANDNOT/OR over word spans, popcount, and the fused
// masked count-and-weighted-sum behind SplitWeightIndex closure mode.
//
// One implementation table per instruction set (scalar, AVX2, AVX-512) is
// compiled into every binary via per-function target attributes; the active
// table is picked once per process from CPUID, overridable by the
// AIGS_KERNELS environment variable or SetMode(). All implementations are
// BIT-IDENTICAL: Weight is uint64_t, so summation order is irrelevant
// (wraparound addition is associative), and counts are exact — pinning
// AIGS_KERNELS=scalar must reproduce every transcript and cost aggregate
// byte for byte.
//
// Kernels operate on FULL 64-bit words only; callers settle a bitset's
// partial tail word themselves (see util/bitset.cc), which keeps the hot
// loops free of per-word valid-mask bookkeeping.
#ifndef AIGS_UTIL_KERNELS_H_
#define AIGS_UTIL_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/common.h"

namespace aigs::kernels {

/// Instruction-set selection. kAuto resolves to the best CPU-supported set.
enum class Mode {
  kScalar,
  kAvx2,
  kAvx512,
  kAuto,
};

/// Fused result of a count + weighted-sum kernel.
struct CountAndWeight {
  std::size_t count = 0;
  Weight weight = 0;
};

/// One implementation table. All spans are `n` full 64-bit words; `weights`
/// has 64 entries per word and `block_sums` one per word (see
/// BlockedWeights in util/bitset.h).
struct Ops {
  Mode mode;
  const char* name;

  /// dst[i] &= src[i].
  void (*and_words)(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t n);
  /// dst[i] &= ~src[i].
  void (*andnot_words)(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n);
  /// dst[i] |= src[i].
  void (*or_words)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n);
  /// Σ popcount(words[i]).
  std::size_t (*popcount_words)(const std::uint64_t* words, std::size_t n);
  /// Σ popcount(a[i] & b[i]).
  std::size_t (*and_popcount_words)(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n);
  /// |a & b| and Σ weights over the set bits of (a & b), with fully-set
  /// intersection words settled against `block_sums` in one add.
  CountAndWeight (*masked_count_weight)(const std::uint64_t* a,
                                        const std::uint64_t* b, std::size_t n,
                                        const Weight* weights,
                                        const Weight* block_sums);
  /// Single-operand variant: |words| and Σ weights over its set bits — the
  /// interior-word kernel of RangeCountAndWeightedSum.
  CountAndWeight (*count_weight)(const std::uint64_t* words, std::size_t n,
                                 const Weight* weights,
                                 const Weight* block_sums);
};

/// Σ weights over the set bits of one intersection word, settled against the
/// word's precomputed block sum. `valid` masks the bit positions that exist
/// (the last word of a bitset may be partial); `word` never has bits outside
/// `valid` set. Shared by every implementation (it IS the scalar reference
/// for mixed words), and by util/bitset.cc for boundary/tail words.
inline Weight BlockedWordSum(std::uint64_t word, std::uint64_t valid,
                             const Weight* weights, Weight block_sum) {
  if (word == valid) {
    return block_sum;
  }
  if (std::popcount(word) > 32) {
    // Majority set: gather the complement and subtract.
    Weight off = 0;
    std::uint64_t inv = ~word & valid;
    while (inv != 0) {
      off += weights[std::countr_zero(inv)];
      inv &= inv - 1;
    }
    return block_sum - off;
  }
  Weight on = 0;
  while (word != 0) {
    on += weights[std::countr_zero(word)];
    word &= word - 1;
  }
  return on;
}

/// True when the running CPU can execute `mode` (kScalar/kAuto: always).
bool CpuSupports(Mode mode);

/// The best CPU-supported mode (kAvx512 ≥ kAvx2 ≥ kScalar).
Mode BestSupported();

/// "scalar" / "avx2" / "avx512" / "auto".
const char* ModeName(Mode mode);

/// Parses "scalar|avx2|avx512|auto" (the AIGS_KERNELS grammar). Returns
/// false on anything else.
bool ParseMode(std::string_view text, Mode* out);

/// Implementation table for an explicit mode (kAuto → BestSupported()).
/// The mode must be CPU-supported — test seam for comparing implementations
/// side by side without flipping the process-wide pin.
const Ops& OpsFor(Mode mode);

/// The process-wide active table. First use resolves AIGS_KERNELS
/// (unset/invalid → auto; a set mode the CPU lacks falls back to the best
/// supported one); SetMode() overrides later.
const Ops& Active();

/// Mode of the active table (never kAuto).
Mode ActiveMode();

/// Re-pins the process-wide table. kAuto restores the env/CPU default.
/// Not synchronized against concurrent kernel calls — pin at startup or in
/// single-threaded test sections.
void SetMode(Mode mode);

}  // namespace aigs::kernels

#endif  // AIGS_UTIL_KERNELS_H_
