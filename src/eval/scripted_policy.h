// A policy that asks a fixed sequence of reachability questions, skipping
// any whose answer is already implied by the candidate set, and stops once a
// single candidate remains. Example 2 of the paper compares two such
// sequential strategies on the vehicle hierarchy (totals 260 vs 204 over 100
// objects); scripted policies let tests and benches replay them exactly.
#ifndef AIGS_EVAL_SCRIPTED_POLICY_H_
#define AIGS_EVAL_SCRIPTED_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"

namespace aigs {

/// Fixed-question-order policy. The script must be long enough to pin down
/// every possible target (fatal check otherwise).
class ScriptedPolicy : public Policy {
 public:
  ScriptedPolicy(const Hierarchy& hierarchy, std::vector<NodeId> script,
                 std::string name = "Scripted");

  std::string name() const override { return name_; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  std::vector<NodeId> script_;
  std::string name_;
};

}  // namespace aigs

#endif  // AIGS_EVAL_SCRIPTED_POLICY_H_
