#include "baselines/migs.h"

#include <algorithm>
#include <vector>

namespace aigs {
namespace {

class MigsSession final : public SearchSession {
 public:
  MigsSession(const Hierarchy& hierarchy,
              const std::vector<std::vector<NodeId>>* ordered_children,
              std::size_t max_choices)
      : hierarchy_(&hierarchy),
        graph_(&hierarchy.graph()),
        ordered_children_(ordered_children),
        max_choices_(max_choices),
        node_(hierarchy.graph().root()) {}

  Query PlanQuestion() const override {
    const std::vector<NodeId>& children = ChildrenOf(node_);
    if (offset_ >= children.size()) {
      return Query::Done(node_);
    }
    const std::size_t batch =
        max_choices_ == 0
            ? children.size() - offset_
            : std::min(max_choices_, children.size() - offset_);
    std::vector<NodeId> choices(
        children.begin() + static_cast<std::ptrdiff_t>(offset_),
        children.begin() + static_cast<std::ptrdiff_t>(offset_ + batch));
    return Query::ChoiceQuery(std::move(choices));
  }

  void ApplyChoice(std::span<const NodeId> choices, int answer) override {
    AIGS_CHECK(!choices.empty());
    if (answer < 0) {
      offset_ += choices.size();  // none of this batch; next batch (or done)
      return;
    }
    AIGS_CHECK(static_cast<std::size_t>(answer) < choices.size());
    node_ = choices[static_cast<std::size_t>(answer)];
    offset_ = 0;
  }

  // Observed fold (cross-epoch migration): a choice recorded under another
  // epoch's likelihood ordering presents categories this automaton would
  // batch or order differently. Rewrite the underlying facts — "the target
  // is under c" / "under none of these" — against the current
  // (node_, offset_) scan state instead of replaying the batch verbatim.
  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kChoice) {
      return SearchSession::ApplyObservedStep(step);
    }
    const ReachabilityIndex& reach = hierarchy_->reach();
    for (const NodeId v : step.nodes) {
      if (v >= hierarchy_->NumNodes()) {
        return Status::OutOfRange("observed choice node " +
                                  std::to_string(v) +
                                  " outside the hierarchy");
      }
    }
    if (step.choice >= 0) {
      const NodeId c = step.nodes[static_cast<std::size_t>(step.choice)];
      if (c == node_ || reach.Reaches(c, node_)) {
        return Status::OK();  // ancestor-or-self: membership already known
      }
      if (!reach.Reaches(node_, c)) {
        // Not under the current node. On a tree that contradicts the pick
        // that descended here; on a DAG the fact is consistent
        // (multi-parent targets) but this single-node automaton cannot
        // hold it — forget it, the scan stays exact.
        return hierarchy_->is_tree()
                   ? Status::InvalidArgument(
                         "observed choice " + std::to_string(c) +
                         " outside the current category's subtree")
                   : Status::OK();
      }
      // c lies below node_: reject a pick inside a category an earlier
      // "none of these" round already ruled out.
      const std::vector<NodeId>& children = ChildrenOf(node_);
      for (std::size_t i = 0; i < offset_ && i < children.size(); ++i) {
        if (children[i] == c || reach.Reaches(children[i], c)) {
          return Status::InvalidArgument(
              "observed choice " + std::to_string(c) +
              " inside an already-eliminated category");
        }
      }
      node_ = c;
      offset_ = 0;
      return Status::OK();
    }
    // "None of these": every presented category is ruled out. Contradict
    // when one of them contains the current node (whose membership is an
    // established yes); otherwise advance the scan past children the
    // observed round covers and forget the rest.
    for (const NodeId x : step.nodes) {
      if (x == node_ || reach.Reaches(x, node_)) {
        return Status::InvalidArgument(
            "observed 'none of these' rules out node " + std::to_string(x) +
            ", an ancestor of the current category");
      }
    }
    const std::vector<NodeId>& children = ChildrenOf(node_);
    const auto covered = [&](NodeId child) {
      for (const NodeId x : step.nodes) {
        if (x == child || reach.Reaches(x, child)) {
          return true;  // R(child) ⊆ R(x), so the no transfers
        }
      }
      return false;
    };
    while (offset_ < children.size() && covered(children[offset_])) {
      ++offset_;
    }
    return Status::OK();
  }

 private:
  const std::vector<NodeId>& ChildrenOf(NodeId v) const {
    if (!ordered_children_->empty()) {
      return (*ordered_children_)[v];
    }
    // Insertion order; materialize once per visited node.
    scratch_.assign(graph_->Children(v).begin(), graph_->Children(v).end());
    return scratch_;
  }

  const Hierarchy* hierarchy_;
  const Digraph* graph_;
  const std::vector<std::vector<NodeId>>* ordered_children_;
  std::size_t max_choices_;
  NodeId node_;
  std::size_t offset_ = 0;
  mutable std::vector<NodeId> scratch_;
};

}  // namespace

MigsPolicy::MigsPolicy(const Hierarchy& hierarchy, MigsOptions options)
    : hierarchy_(&hierarchy), options_(options) {}

MigsPolicy::MigsPolicy(const Hierarchy& hierarchy, const Distribution& dist,
                       MigsOptions options)
    : hierarchy_(&hierarchy), options_(options) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  const std::vector<Weight> reach_weight =
      hierarchy.reach().AllReachableSetWeights(dist.weights());
  ordered_children_.resize(hierarchy.NumNodes());
  for (NodeId v = 0; v < hierarchy.NumNodes(); ++v) {
    const auto children = hierarchy.graph().Children(v);
    ordered_children_[v].assign(children.begin(), children.end());
    std::stable_sort(
        ordered_children_[v].begin(), ordered_children_[v].end(),
        [&reach_weight](NodeId a, NodeId b) {
          return reach_weight[a] > reach_weight[b];
        });
  }
}

std::unique_ptr<SearchSession> MigsPolicy::NewSession() const {
  return std::make_unique<MigsSession>(*hierarchy_, &ordered_children_,
                                       options_.max_choices_per_question);
}

}  // namespace aigs
