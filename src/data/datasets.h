// One-call construction of the two paper-scale evaluation datasets
// (hierarchy + "real" object-count distribution) and their Table II
// statistics.
#ifndef AIGS_DATA_DATASETS_H_
#define AIGS_DATA_DATASETS_H_

#include <string>

#include "core/hierarchy.h"
#include "data/synthetic_catalog.h"
#include "prob/distribution.h"

namespace aigs {

/// A ready-to-evaluate dataset.
struct Dataset {
  std::string name;
  Hierarchy hierarchy;
  /// Object counts per category (the "real data distribution").
  Distribution real_distribution;
  std::uint64_t num_objects = 0;
};

/// Amazon-like tree at the paper's scale, or shrunk by `scale` (node count,
/// object count and max degree scaled down; height preserved) for fast
/// default bench runs. scale = 1.0 reproduces Table II exactly. `reach`
/// selects the hierarchy's reachability storage (dense vs compressed
/// closure rows; the default auto-picks by size).
Dataset MakeAmazonDataset(double scale = 1.0,
                          const ReachabilityOptions& reach = {});

/// ImageNet-like DAG, same contract.
Dataset MakeImageNetDataset(double scale = 1.0,
                            const ReachabilityOptions& reach = {});

/// Renders the Table II statistics row for a dataset.
std::string DescribeDataset(const Dataset& dataset);

}  // namespace aigs

#endif  // AIGS_DATA_DATASETS_H_
