#include "core/split_weight_index.h"

namespace aigs {

SplitWeightIndex::SplitWeightIndex(const Hierarchy& hierarchy,
                                   const std::vector<Weight>& weights)
    : hierarchy_(&hierarchy),
      reach_(&hierarchy.reach()),
      node_weights_(&weights),
      euler_(hierarchy.reach().euler_mode()),
      visited_(hierarchy.NumNodes()) {
  AIGS_CHECK(weights.size() == hierarchy.NumNodes());
  if (euler_) {
    const std::size_t n = hierarchy.NumNodes();
    euler_weights_.resize(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      euler_weights_[t] = weights[reach_->NodeAtEuler(t)];
    }
  }
  Reset();
}

void SplitWeightIndex::Reset() {
  const std::size_t n = hierarchy_->NumNodes();
  root_ = hierarchy_->root();
  alive_count_ = n;
  if (alive_.size() != n) {
    alive_.Resize(n, true);
  } else {
    alive_.SetAll();
  }
  if (euler_) {
    fenwick_weight_.Build(euler_weights_);
    const std::vector<std::uint32_t> counts(n, 1);
    fenwick_count_.Build(counts);
    total_alive_ = fenwick_weight_.Total();
  } else {
    total_alive_ = 0;
    for (const Weight w : *node_weights_) {
      total_alive_ += w;
    }
  }
}

void SplitWeightIndex::ResetFrom(const SplitWeightIndex& other) {
  AIGS_DCHECK(hierarchy_ == other.hierarchy_ &&
              node_weights_ == other.node_weights_);
  root_ = other.root_;
  alive_count_ = other.alive_count_;
  total_alive_ = other.total_alive_;
  alive_ = other.alive_;
  if (euler_) {
    fenwick_weight_.ResetFrom(other.fenwick_weight_);
    fenwick_count_.ResetFrom(other.fenwick_count_);
  }
}

NodeId SplitWeightIndex::Target() const {
  AIGS_CHECK(alive_count_ == 1);
  const std::size_t pos = alive_.FindFirst();
  return euler_ ? reach_->NodeAtEuler(static_cast<std::uint32_t>(pos))
                : static_cast<NodeId>(pos);
}

Weight SplitWeightIndex::ReachWeight(NodeId v) const {
  if (euler_) {
    return fenwick_weight_.RangeSum(reach_->EulerBegin(v),
                                    reach_->EulerEnd(v));
  }
  return alive_.MaskedWeightedSum(reach_->ClosureRow(v), *node_weights_);
}

std::size_t SplitWeightIndex::ReachCount(NodeId v) const {
  if (euler_) {
    return fenwick_count_.RangeSum(reach_->EulerBegin(v),
                                   reach_->EulerEnd(v));
  }
  return alive_.IntersectionCount(reach_->ClosureRow(v));
}

void SplitWeightIndex::ZeroFenwickInRange(std::uint32_t begin,
                                          std::uint32_t end) {
  alive_.ForEachSetBitInRange(begin, end, [&](std::size_t t) {
    fenwick_weight_.Add(t, Weight{0} - euler_weights_[t]);
    fenwick_count_.Add(t, std::uint32_t{0} - std::uint32_t{1});
  });
}

void SplitWeightIndex::ApplyYes(NodeId q) {
  if (euler_) {
    const std::uint32_t tin = reach_->EulerBegin(q);
    const std::uint32_t tout = reach_->EulerEnd(q);
    // Kill every alive position outside [tin, tout).
    ZeroFenwickInRange(0, tin);
    ZeroFenwickInRange(tout, static_cast<std::uint32_t>(alive_.size()));
    alive_.KeepOnlyRange(tin, tout);
    alive_count_ = fenwick_count_.RangeSum(tin, tout);
    total_alive_ = fenwick_weight_.RangeSum(tin, tout);
  } else {
    const DynamicBitset& row = reach_->ClosureRow(q);
    total_alive_ = alive_.MaskedWeightedSum(row, *node_weights_);
    alive_count_ = alive_.IntersectionCount(row);
    alive_.AndWith(row);
  }
  root_ = q;
}

void SplitWeightIndex::ApplyNo(NodeId q) {
  if (euler_) {
    const std::uint32_t tin = reach_->EulerBegin(q);
    const std::uint32_t tout = reach_->EulerEnd(q);
    total_alive_ -= fenwick_weight_.RangeSum(tin, tout);
    alive_count_ -= fenwick_count_.RangeSum(tin, tout);
    ZeroFenwickInRange(tin, tout);
    alive_.ClearRange(tin, tout);
  } else {
    const DynamicBitset& row = reach_->ClosureRow(q);
    total_alive_ -= alive_.MaskedWeightedSum(row, *node_weights_);
    alive_count_ -= alive_.IntersectionCount(row);
    alive_.AndNotWith(row);
  }
}

void SplitWeightIndex::ApplyBatch(std::span<const NodeId> nodes,
                                  const std::vector<bool>& answers) {
  AIGS_CHECK(nodes.size() == answers.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (answers[i]) {
      ApplyYes(nodes[i]);
    } else {
      ApplyNo(nodes[i]);
    }
  }
}

MiddlePoint SplitWeightIndex::FindMiddlePoint() const {
  AIGS_DCHECK(alive_count_ > 1);
  const Digraph& g = hierarchy_->graph();
  const Weight total = total_alive_;
  MiddlePoint best;

  // Dominance-pruned descent from the root (the rooted generalization of
  // Algorithm 6's BFS). Weights are non-increasing along alive paths
  // (R(child) ∩ C ⊆ R(parent) ∩ C), so below a node with w ≤ total − w every
  // descendant's diff is ≥ the node's own; descending further can only
  // matter when the node ties the best diff seen so far (an equal-weight
  // descendant may have a smaller id). Expanding exactly those nodes visits
  // every global minimizer, making the (diff, id) argmin identical to the
  // naive full scan's.
  visited_.NewEpoch();
  queue_.clear();
  queue_.push_back(root_);
  visited_.Visit(root_);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId u = queue_[head];
    for (const NodeId v : g.Children(u)) {
      if (visited_.IsVisited(v) || !IsAlive(v)) {
        continue;
      }
      visited_.Visit(v);
      const Weight w = ReachWeight(v);
      // Overflow-safe |2w − total| as |w − (total − w)|; w ≤ total.
      const Weight rest = total - w;
      const Weight diff = w > rest ? w - rest : rest - w;
      if (best.node == kInvalidNode || diff < best.split_diff ||
          (diff == best.split_diff && v < best.node)) {
        best.node = v;
        best.split_diff = diff;
        best.reach_weight = w;
      }
      if (w > rest || diff <= best.split_diff) {
        queue_.push_back(v);
      }
    }
  }
  AIGS_CHECK(best.node != kInvalidNode);
  return best;
}

MiddlePoint SplitWeightIndex::FindSplittingMiddlePoint() const {
  const Weight total = total_alive_;
  const std::size_t count = alive_count_;
  MiddlePoint best;
  ForEachAlive([&](NodeId v) {
    // The count gates the "splits the set" requirement, the weight feeds
    // the diff. Closure mode fuses both into one word scan; Euler mode
    // checks the (cheap) count first and skips the weight sum for covering
    // nodes.
    Weight w;
    if (euler_) {
      if (fenwick_count_.RangeSum(reach_->EulerBegin(v),
                                  reach_->EulerEnd(v)) == count) {
        return;  // "yes" is certain; the question is wasted
      }
      w = fenwick_weight_.RangeSum(reach_->EulerBegin(v),
                                   reach_->EulerEnd(v));
    } else {
      const DynamicBitset::CountAndWeight cw =
          alive_.MaskedCountAndWeightedSum(reach_->ClosureRow(v),
                                           *node_weights_);
      if (cw.count == count) {
        return;  // "yes" is certain; the question is wasted
      }
      w = cw.weight;
    }
    const Weight rest = total - w;
    const Weight diff = w > rest ? w - rest : rest - w;
    if (best.node == kInvalidNode || diff < best.split_diff ||
        (diff == best.split_diff && v < best.node)) {
      best.node = v;
      best.split_diff = diff;
      best.reach_weight = w;
    }
  });
  return best;
}

}  // namespace aigs
