#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace aigs {

std::string SerializeHierarchy(const Digraph& g) {
  AIGS_CHECK(g.finalized());
  std::string out = "# aigs-hierarchy v1\n";
  out += "n " + std::to_string(g.NumNodes()) + "\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (!g.Label(v).empty()) {
      out += "l " + std::to_string(v) + " " + g.Label(v) + "\n";
    }
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId c : g.Children(u)) {
      out += "e " + std::to_string(u) + " " + std::to_string(c) + "\n";
    }
  }
  return out;
}

StatusOr<Digraph> ParseHierarchy(const std::string& text) {
  Digraph g;
  bool have_n = false;
  std::size_t n = 0;
  std::size_t line_no = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const auto error = [&](const std::string& msg) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     msg);
    };
    if (trimmed[0] == 'n') {
      if (have_n) {
        return error("duplicate 'n' directive");
      }
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t parsed,
                            ParseUint64(trimmed.substr(1)));
      if (parsed == 0 || parsed >= kInvalidNode) {
        return error("node count out of range");
      }
      n = static_cast<std::size_t>(parsed);
      g.AddNodes(n);
      have_n = true;
      continue;
    }
    if (!have_n) {
      return error("'n' directive must come first");
    }
    if (trimmed[0] == 'l') {
      const std::string_view rest = Trim(trimmed.substr(1));
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return error("label directive needs '<id> <label>'");
      }
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t id,
                            ParseUint64(rest.substr(0, space)));
      if (id >= n) {
        return error("label node id out of range");
      }
      g.SetLabel(static_cast<NodeId>(id),
                 std::string(Trim(rest.substr(space + 1))));
      continue;
    }
    if (trimmed[0] == 'e') {
      const auto fields = Split(std::string_view(Trim(trimmed.substr(1))), ' ');
      if (fields.size() != 2) {
        return error("edge directive needs '<parent> <child>'");
      }
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t parent,
                            ParseUint64(fields[0]));
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t child, ParseUint64(fields[1]));
      if (parent >= n || child >= n) {
        return error("edge endpoint out of range");
      }
      if (parent == child) {
        return error("self-loop");
      }
      g.AddEdge(static_cast<NodeId>(parent), static_cast<NodeId>(child));
      continue;
    }
    return error("unknown directive '" + std::string(1, trimmed[0]) + "'");
  }
  if (!have_n) {
    return Status::InvalidArgument("missing 'n' directive");
  }
  AIGS_RETURN_NOT_OK(g.Finalize());
  return g;
}

Status SaveHierarchy(const Digraph& g, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const std::string text = SerializeHierarchy(g);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) {
    return Status::IOError("write failed for '" + path + "'");
  }
  return Status::OK();
}

StatusOr<Digraph> LoadHierarchy(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseHierarchy(buffer.str());
}

}  // namespace aigs
