#include "graph/reachability.h"

#include <algorithm>

namespace aigs {

ReachabilityIndex::ReachabilityIndex(const Digraph& g)
    : graph_(&g), euler_mode_(g.IsTree()) {
  AIGS_CHECK(g.finalized());
  if (euler_mode_) {
    BuildEuler();
  } else {
    BuildClosure();
  }
}

void ReachabilityIndex::BuildEuler() {
  const Digraph& g = *graph_;
  const std::size_t n = g.NumNodes();
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  euler_to_node_.assign(n, kInvalidNode);
  reach_count_.assign(n, 0);

  // Iterative DFS (hierarchies can be deep; no recursion).
  std::uint32_t clock = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, child index)
  stack.emplace_back(g.root(), 0);
  tin_[g.root()] = clock;
  euler_to_node_[clock++] = g.root();
  while (!stack.empty()) {
    auto& [u, next_child] = stack.back();
    const auto children = g.Children(u);
    if (next_child < children.size()) {
      const NodeId c = children[next_child++];
      tin_[c] = clock;
      euler_to_node_[clock++] = c;
      stack.emplace_back(c, 0);
    } else {
      tout_[u] = clock;
      reach_count_[u] = tout_[u] - tin_[u];
      stack.pop_back();
    }
  }
  AIGS_CHECK(clock == n);
}

void ReachabilityIndex::BuildClosure() {
  const Digraph& g = *graph_;
  const std::size_t n = g.NumNodes();
  closure_.resize(n);
  reach_count_.assign(n, 0);

  // Reverse topological order: children first, then union into parents.
  const std::vector<NodeId>& topo = g.TopologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    DynamicBitset& row = closure_[u];
    row.Resize(n);
    row.Set(u);
    for (const NodeId c : g.Children(u)) {
      row.OrWith(closure_[c]);
    }
    reach_count_[u] = row.Count();
  }
}

Weight ReachabilityIndex::WeightOfReachableSet(
    NodeId u, const std::vector<Weight>& weights) const {
  AIGS_DCHECK(weights.size() == graph_->NumNodes());
  Weight total = 0;
  ForEachReachable(u, [&](NodeId v) { total += weights[v]; });
  return total;
}

std::vector<Weight> ReachabilityIndex::AllReachableSetWeights(
    const std::vector<Weight>& weights) const {
  const Digraph& g = *graph_;
  const std::size_t n = g.NumNodes();
  AIGS_CHECK(weights.size() == n);
  std::vector<Weight> out(n, 0);
  if (euler_mode_) {
    // Subtree sums over the Euler order: prefix sums of weights in Euler
    // positions give each subtree weight in O(n).
    std::vector<Weight> prefix(n + 1, 0);
    for (std::size_t t = 0; t < n; ++t) {
      prefix[t + 1] = prefix[t] + weights[euler_to_node_[t]];
    }
    for (NodeId v = 0; v < n; ++v) {
      out[v] = prefix[tout_[v]] - prefix[tin_[v]];
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      out[v] = WeightOfReachableSet(v, weights);
    }
  }
  return out;
}

}  // namespace aigs
