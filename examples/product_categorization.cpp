// Product categorization on an Amazon-like tree: the paper's headline
// scenario. Compares all four competitors on a synthetic catalog and shows
// the crowdsourcing bill for a labeling campaign.
#include <cstdio>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "data/datasets.h"
#include "eval/evaluator.h"
#include "util/ascii_table.h"
#include "util/string_util.h"

using namespace aigs;  // NOLINT — example brevity

int main() {
  // A 10%-scale catalog keeps this example under a few seconds.
  const Dataset dataset = MakeAmazonDataset(0.10);
  const Hierarchy& h = dataset.hierarchy;
  std::printf("catalog: %s\n\n", DescribeDataset(dataset).c_str());

  TopDownPolicy top_down(h);
  MigsPolicy migs(h);
  WigsTreePolicy wigs(h);
  GreedyTreePolicy greedy(h, dataset.real_distribution);

  AsciiTable table({"Algorithm", "E[questions/object]",
                    "Cost to label all objects ($1/question)"});
  double greedy_cost = 0;
  double top_down_cost = 0;
  for (const Policy* policy :
       {static_cast<const Policy*>(&top_down),
        static_cast<const Policy*>(&migs),
        static_cast<const Policy*>(&wigs),
        static_cast<const Policy*>(&greedy)}) {
    const double cost =
        EvaluateExact(*policy, h, dataset.real_distribution).expected_cost;
    if (policy == &greedy) {
      greedy_cost = cost;
    }
    if (policy == &top_down) {
      top_down_cost = cost;
    }
    std::string bill = "$";
    bill += FormatWithCommas(static_cast<std::uint64_t>(
        cost * static_cast<double>(dataset.num_objects)));
    table.AddRow({policy->name(), FormatDouble(cost), std::move(bill)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("greedy saves %.1f%% of the crowdsourcing bill vs TopDown.\n",
              (1 - greedy_cost / top_down_cost) * 100);
  return 0;
}
