// Convenience factory: picks the right efficient greedy instantiation for a
// hierarchy (GreedyTree on trees, GreedyDAG otherwise) — what the paper
// reports as "GreedyTree / GreedyDAG".
#ifndef AIGS_CORE_GREEDY_H_
#define AIGS_CORE_GREEDY_H_

#include <memory>

#include "core/greedy_dag.h"
#include "core/greedy_tree.h"
#include "core/hierarchy.h"
#include "prob/distribution.h"

namespace aigs {

/// Returns GreedyTreePolicy when the hierarchy is a tree, GreedyDagPolicy
/// otherwise (with each policy's paper-default options).
std::unique_ptr<Policy> MakeGreedyPolicy(const Hierarchy& hierarchy,
                                         const Distribution& dist);

}  // namespace aigs

#endif  // AIGS_CORE_GREEDY_H_
