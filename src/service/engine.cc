#include "service/engine.h"

#include <utility>

namespace aigs {
namespace {

const char* KindName(Query::Kind kind) {
  switch (kind) {
    case Query::Kind::kReach:
      return "reach";
    case Query::Kind::kReachBatch:
      return "reach-batch";
    case Query::Kind::kChoice:
      return "choice";
    case Query::Kind::kDone:
      return "done";
  }
  return "?";
}

}  // namespace

Engine::Engine(EngineOptions options)
    : plan_cache_options_(options.plan_cache),
      sessions_(std::move(options.sessions)) {}

StatusOr<std::shared_ptr<const CatalogSnapshot>> Engine::Publish(
    CatalogConfig config) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<const CatalogSnapshot> snapshot,
      CatalogSnapshot::Build(std::move(config), next_epoch_));
  ++next_epoch_;
  snapshot_ = snapshot;
  // A fresh epoch gets a fresh plan trie; the old one retires with the old
  // snapshot's refcount as its sessions drain, so a publish invalidates
  // every stale plan without any flush or version check on the hot path.
  plan_cache_ = plan_cache_options_.enabled
                    ? std::make_shared<PlanCache>(plan_cache_options_)
                    : nullptr;
  return snapshot;
}

std::shared_ptr<const CatalogSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t Engine::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_ == nullptr ? 0 : snapshot_->epoch();
}

void Engine::CurrentEpochState(
    std::shared_ptr<const CatalogSnapshot>* snap,
    std::shared_ptr<PlanCache>* cache) const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  *snap = snapshot_;
  *cache = plan_cache_;
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::BuildSession(
    std::shared_ptr<const CatalogSnapshot> snap,
    std::shared_ptr<PlanCache> cache, const std::string& policy_spec) {
  AIGS_ASSIGN_OR_RETURN(const Policy* policy, snap->PolicyFor(policy_spec));
  auto session = std::make_shared<ServiceSession>();
  session->snapshot = std::move(snap);
  session->policy_spec = policy_spec;
  session->policy = policy;
  session->plan_cache = std::move(cache);
  session->search = policy->NewSession();
  session->plan_key = policy_spec + '\n';
  return session;
}

StatusOr<SessionId> Engine::Open(const std::string& policy_spec) {
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), policy_spec));
  return sessions_.Insert(std::move(session));
}

StatusOr<std::shared_ptr<ServiceSession>> Engine::FindSession(SessionId id) {
  return sessions_.Find(id);
}

Query Engine::ResolvePending(ServiceSession& session) {
  if (session.has_pending) {
    return session.pending;
  }
  Query query;
  PlanCache* cache = session.plan_cache.get();
  if (cache != nullptr &&
      session.transcript.size() <= cache->options().max_depth) {
    if (std::optional<Query> hit = cache->Lookup(session.plan_key)) {
      // Warm path: the question was planned once by some session at this
      // (policy, transcript) prefix, so Ask skips the planner here. (The
      // candidate-state policies skip it entirely; the phase-automata
      // baselines still settle their derived state inside the applier —
      // their planners are O(children) cheap, and the cache exists for the
      // expensive middle-point planners.)
      query = *std::move(hit);
    } else {
      query = session.search->Next();
      cache->Insert(session.plan_key, query);
    }
  } else {
    query = session.search->Next();
  }
  session.pending = query;
  session.has_pending = true;
  return query;
}

StatusOr<Query> Engine::Ask(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  return ResolvePending(*session);
}

Status Engine::Answer(SessionId id, const SessionAnswer& answer) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  const Query query = ResolvePending(*session);
  if (query.kind == Query::Kind::kDone) {
    return Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " already identified its target; nothing to answer");
  }
  // Service-boundary guard for the SearchSession default-fatal paths: a
  // mismatched answer kind is a client error, not a process abort.
  if (answer.kind != query.kind) {
    return Status::InvalidArgument(
        std::string("pending question expects a ") + KindName(query.kind) +
        " answer, got " + KindName(answer.kind));
  }

  TranscriptStep step;
  step.kind = query.kind;
  switch (query.kind) {
    case Query::Kind::kReach:
      step.nodes = {query.node};
      step.yes = answer.yes;
      session->search->OnReach(query.node, answer.yes);
      break;
    case Query::Kind::kReachBatch:
      if (answer.batch.size() != query.choices.size()) {
        return Status::InvalidArgument(
            "batch answer has " + std::to_string(answer.batch.size()) +
            " entries; the pending batch asks " +
            std::to_string(query.choices.size()) + " questions");
      }
      step.nodes = query.choices;
      step.batch_answers = answer.batch;
      // Content validation too: a mutually inconsistent round (it would
      // eliminate every candidate) bounces with InvalidArgument and leaves
      // the question pending — never the fatal in-process path.
      AIGS_RETURN_NOT_OK(
          session->search->TryOnReachBatch(query.choices, answer.batch));
      break;
    case Query::Kind::kChoice:
      if (answer.choice < -1 ||
          answer.choice >= static_cast<int>(query.choices.size())) {
        return Status::OutOfRange(
            "choice answer " + std::to_string(answer.choice) +
            " outside [-1, " + std::to_string(query.choices.size()) + ")");
      }
      step.nodes = query.choices;
      step.choice = answer.choice;
      session->search->OnChoice(query.choices, answer.choice);
      break;
    case Query::Kind::kDone:
      AIGS_CHECK(false);  // handled above
  }
  // Advance the cache key by this step's SessionCodec line — the trie edge
  // from the old prefix to the new one — and drop the consumed plan. Past
  // the depth cap the key is never read again, so stop growing it.
  if (session->plan_cache != nullptr &&
      session->transcript.size() < session->plan_cache->options().max_depth) {
    SessionCodec::AppendStepKey(step, &session->plan_key);
  }
  session->has_pending = false;
  session->transcript.push_back(std::move(step));
  return Status::OK();
}

StatusOr<std::string> Engine::Save(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(const std::shared_ptr<ServiceSession> session,
                        FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  SerializedSession out;
  out.fingerprint = session->snapshot->fingerprint();
  out.epoch = session->snapshot->epoch();
  out.policy_spec = session->policy_spec;
  out.steps = session->transcript;
  return SessionCodec::Encode(out);
}

StatusOr<SessionId> Engine::Resume(const std::string& serialized) {
  AIGS_ASSIGN_OR_RETURN(const SerializedSession saved,
                        SessionCodec::Decode(serialized));
  std::shared_ptr<const CatalogSnapshot> snap;
  std::shared_ptr<PlanCache> cache;
  CurrentEpochState(&snap, &cache);
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "no catalog snapshot published yet — call Publish first");
  }
  if (saved.fingerprint != snap->fingerprint()) {
    return Status::FailedPrecondition(
        "saved session was recorded on a different catalog (fingerprint "
        "mismatch); replay would not be exact");
  }
  AIGS_ASSIGN_OR_RETURN(
      std::shared_ptr<ServiceSession> session,
      BuildSession(std::move(snap), std::move(cache), saved.policy_spec));

  // Replay with verification: determinism (Definition 6) guarantees the
  // fresh session regenerates the recorded questions in order; any
  // divergence means the catalog or policy changed under us.
  for (std::size_t i = 0; i < saved.steps.size(); ++i) {
    const TranscriptStep& step = saved.steps[i];
    const Query query = session->search->Next();
    // The replay already paid the planner; memoize its answer so bulk
    // restores warm the trie exactly like Ask's miss path would.
    if (session->plan_cache != nullptr &&
        session->transcript.size() <=
            session->plan_cache->options().max_depth) {
      session->plan_cache->Insert(session->plan_key, query);
    }
    const bool matches =
        query.kind == step.kind &&
        (query.kind == Query::Kind::kReach
             ? (step.nodes.size() == 1 && query.node == step.nodes[0])
             : query.choices == step.nodes);
    if (!matches) {
      return Status::Internal(
          "transcript replay diverged at step " + std::to_string(i) +
          ": the snapshot no longer reproduces the saved question sequence");
    }
    switch (step.kind) {
      case Query::Kind::kReach:
        session->search->OnReach(step.nodes[0], step.yes);
        break;
      case Query::Kind::kReachBatch:
        if (step.batch_answers.size() != step.nodes.size()) {
          return Status::InvalidArgument(
              "saved batch step " + std::to_string(i) +
              " has mismatched answer count");
        }
        // A crafted blob may contain an inconsistent round the live engine
        // would have rejected; reject it here the same way.
        AIGS_RETURN_NOT_OK(
            session->search->TryOnReachBatch(step.nodes, step.batch_answers));
        break;
      case Query::Kind::kChoice:
        session->search->OnChoice(step.nodes, step.choice);
        break;
      case Query::Kind::kDone:
        return Status::InvalidArgument("saved transcript contains a 'done' "
                                       "step");
    }
    if (session->plan_cache != nullptr &&
        session->transcript.size() <
            session->plan_cache->options().max_depth) {
      SessionCodec::AppendStepKey(step, &session->plan_key);
    }
    session->transcript.push_back(step);
  }
  return sessions_.Insert(std::move(session));
}

Status Engine::Close(SessionId id) { return sessions_.Erase(id); }

std::shared_ptr<PlanCache> Engine::plan_cache() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return plan_cache_;
}

EngineStats Engine::Stats() const {
  EngineStats stats;
  std::shared_ptr<PlanCache> cache;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    stats.epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch();
    cache = plan_cache_;
  }
  stats.sessions_by_epoch = sessions_.SessionsByEpoch();
  for (const auto& [epoch, count] : stats.sessions_by_epoch) {
    stats.live_sessions += count;
  }
  if (cache != nullptr) {
    stats.plan_cache_enabled = true;
    stats.plan_cache = cache->stats();
  }
  return stats;
}

}  // namespace aigs
