// Core type aliases and assertion macros shared by every aigs module.
#ifndef AIGS_UTIL_COMMON_H_
#define AIGS_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace aigs {

/// Identifier of a node in a hierarchy. Dense, 0-based.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Integer probability weight. All policy arithmetic is exact integer
/// arithmetic: a `Distribution` assigns a uint64 weight to every node and
/// probabilities are weight / total_weight. This keeps greedy tie-breaking
/// deterministic and avoids floating-point drift in incremental updates.
using Weight = std::uint64_t;

/// Signed counterpart used by overlay deltas.
using WeightDelta = std::int64_t;

/// 128-bit helpers for overflow-free products of weights (cost-sensitive
/// greedy compares p(Gu)·p(G\Gu)/c(u) across nodes).
using U128 = unsigned __int128;

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Fatal invariant check, enabled in all build types. Use for programmer
/// errors (violated preconditions), not for recoverable conditions — those
/// return `Status`.
#define AIGS_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::aigs::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (0)

#ifdef NDEBUG
#define AIGS_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define AIGS_DCHECK(expr) AIGS_CHECK(expr)
#endif

}  // namespace aigs

#endif  // AIGS_UTIL_COMMON_H_
