// Closed-loop load generator for the aigs-wire/1 front end — the engine
// behind the `aigs_loadgen` tool and the `network` bench suite.
//
// The driver is a single-threaded poll(2) multiplexer over C nonblocking
// connections, each with exactly one request in flight (closed loop). On
// each response a per-connection state machine advances a real search
// session — open → (ask → answer)* → close, answering every question
// through an ExactOracle against a locally loaded copy of the hierarchy —
// so the traffic exercises the full planner path, not an echo server.
// Per-request latency is send-to-response; p50/p99 come from the full
// recorded distribution (no sampling).
//
// Sharded mode: with several targets, connections round-robin across them
// and every Open proposes a session id REJECTION-SAMPLED to land on that
// connection's shard under the ShardRing — the same placement a
// ShardRouter computes — so a multi-shard run has zero cross-shard
// traffic by construction.
#ifndef AIGS_NET_LOADGEN_H_
#define AIGS_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "net/net_util.h"
#include "util/status.h"

namespace aigs::net {

struct LoadgenOptions {
  /// One endpoint = single-server mode; several = sharded mode with
  /// ShardRing-consistent session placement.
  std::vector<Endpoint> targets;
  /// Concurrent connections, spread round-robin across the targets.
  std::size_t connections = 64;
  /// Stop after this many completed requests (0 = no request cap; then
  /// duration_ms must be set).
  std::uint64_t max_requests = 0;
  /// Stop after this much wall time (0 = no time cap).
  std::uint32_t duration_ms = 0;
  /// Policy spec each session opens (must be in the server's catalog).
  std::string policy_spec = "greedy";
  /// The same hierarchy the servers published — answers are computed
  /// locally against its reachability index. Must outlive the run.
  const Hierarchy* hierarchy = nullptr;
  /// Seed for target sampling and proposed-id generation.
  std::uint64_t seed = 1;
  /// Ring geometry for sharded placement (must match the router's).
  std::size_t vnodes = 64;
  int connect_timeout_ms = 5'000;
};

struct LoadgenResult {
  std::uint64_t requests = 0;  ///< completed round trips
  std::uint64_t errors = 0;    ///< non-OK service responses
  std::uint64_t sessions_completed = 0;
  /// Sessions whose kDone target mismatched the sampled one — always 0
  /// against a correct server (checked by the bench gate).
  std::uint64_t wrong_targets = 0;
  double wall_ms = 0;
  double throughput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
};

/// Runs the closed loop until a stop condition hits. Per-connection
/// failures (refused, reset) count as errors and retire the connection;
/// the run fails outright only when no connection could do any work.
StatusOr<LoadgenResult> RunLoadgen(const LoadgenOptions& options);

}  // namespace aigs::net

#endif  // AIGS_NET_LOADGEN_H_
