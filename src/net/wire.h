// aigs-wire/1 — the binary framing and message codec of the network front
// end. One frame carries one request or one response:
//
//     [u32 payload length][u32 CRC-32 of payload][payload]
//
// (little-endian, CRC-32 as in the durable store's WAL). The payload starts
// with a version byte and an opcode; the remaining fields are op-specific.
// Both sides share this codec, so the server, the blocking client, the
// shard router, and the load generator all speak exactly the same bytes.
//
// Design rules, enforced by the adversarial tests in tests/test_net.cc:
//
//  * Decoding NEVER crashes or over-reads: every read is bounds-checked and
//    returns Status. Truncated buffers are "need more bytes", not errors —
//    a stream can legitimately pause mid-frame.
//  * An oversized declared length is rejected immediately (kCorrupt),
//    before any attempt to buffer it — a 4-byte prefix must not make the
//    server allocate gigabytes or wait forever.
//  * A CRC mismatch is kCorrupt: the connection cannot be resynchronized
//    (frame boundaries are length-derived), so the peer closes it.
//  * Service errors map 1:1 onto util/status.h StatusCode values — the
//    client rebuilds the exact Status the Engine returned on the server.
#ifndef AIGS_NET_WIRE_H_
#define AIGS_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "service/engine.h"
#include "util/status.h"

namespace aigs::net {

/// Protocol version (the "1" in aigs-wire/1).
inline constexpr std::uint8_t kWireVersion = 1;

/// Frame header: u32 payload length + u32 CRC-32.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Hard cap on one frame's payload. Save/Resume blobs are the largest
/// legitimate payloads (a transcript line per answered question); 8 MiB is
/// orders of magnitude above any real session while still rejecting
/// absurd length prefixes instantly.
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

/// Request opcodes — the Engine's session API verbatim.
enum class WireOp : std::uint8_t {
  kOpen = 1,
  kAsk = 2,
  kAnswer = 3,
  kSave = 4,
  kResume = 5,
  kMigrate = 6,
  kClose = 7,
  kStats = 8,
};

/// Lowercase op name ("open", ...; "?" for an invalid byte).
const char* WireOpName(WireOp op);

/// One decoded request. `id` is the target session for session-addressed
/// ops; for Open/Resume/Migrate-by-blob it is the PROPOSED session id
/// (0 = server assigns) — the seam consistent-hash routing needs so a
/// session's id alone determines its shard.
struct WireRequest {
  WireOp op = WireOp::kAsk;
  SessionId id = 0;
  /// Open: policy spec. Resume: saved blob. Migrate: saved blob, or empty
  /// to migrate the live session `id` in place.
  std::string text;
  /// Answer only.
  SessionAnswer answer;
};

/// Stats payload of a kStats response — the service-level traffic counters
/// a front end or router aggregates across shards.
struct WireStats {
  std::uint64_t epoch = 0;
  std::uint64_t live_sessions = 0;
  OpStats ops;
};

/// One decoded response. `code`/`message` mirror the engine's Status; the
/// op-specific result fields are meaningful only when code == kOk.
struct WireResponse {
  WireOp op = WireOp::kAsk;
  StatusCode code = StatusCode::kOk;
  std::string message;

  SessionId id = 0;          // Open / Resume (and Migrate's new id)
  Query query;               // Ask
  std::string text;          // Save blob
  MigrateResult migrate;     // Migrate
  WireStats stats;           // Stats

  bool ok() const { return code == StatusCode::kOk; }
  /// Rebuilds the engine's Status (OK when the call succeeded).
  Status ToStatus() const;
};

/// Builds an error response echoing `op`.
WireResponse ErrorResponse(WireOp op, const Status& status);

// ---- framing ---------------------------------------------------------------

/// Appends one frame (header + payload) to `out`.
void AppendFrame(std::string* out, std::string_view payload);

/// Outcome of scanning a receive buffer for one frame.
enum class FrameStatus {
  kFrame,     ///< a complete, CRC-valid frame; *payload/*consumed set
  kNeedMore,  ///< the buffer holds only a prefix of a frame — read on
  kCorrupt,   ///< oversized length or CRC mismatch; close the connection
};

/// Scans `buffer` for one complete frame. On kFrame, `*payload` views the
/// payload bytes INSIDE `buffer` (valid until the buffer mutates) and
/// `*consumed` is the total frame size to drop from the buffer's front.
/// On kCorrupt, `*error` (optional) describes the rejection. Frames whose
/// declared payload exceeds `max_payload` are kCorrupt immediately — the
/// caller never waits for (or buffers) an absurd length.
FrameStatus ExtractFrame(std::string_view buffer, std::string_view* payload,
                         std::size_t* consumed, std::string* error,
                         std::size_t max_payload = kMaxFramePayload);

// ---- message codec ---------------------------------------------------------

/// Encodes a full request/response frame (header + payload), ready to send.
std::string EncodeRequest(const WireRequest& request);
std::string EncodeResponse(const WireResponse& response);

/// Decodes one extracted frame payload. Any malformed input — bad version,
/// unknown opcode, truncated field, out-of-range value, trailing garbage —
/// is InvalidArgument, never a crash. On failure the out-param may be
/// partially filled (its `op` is kept when it decoded, so error replies can
/// echo it) but must not be used as a message.
Status DecodeRequestPayload(std::string_view payload, WireRequest* request);
Status DecodeResponsePayload(std::string_view payload,
                             WireResponse* response);

// ---- shared helpers --------------------------------------------------------

/// 64-bit mix (splitmix64 finalizer) — the hash behind consistent-hash
/// placement. Deterministic across processes and platforms by definition.
std::uint64_t Mix64(std::uint64_t x);

/// FNV-1a over bytes, mixed — hashes shard endpoint identities onto the
/// ring.
std::uint64_t HashBytes64(std::string_view bytes);

/// Ignores SIGPIPE process-wide (idempotent). A dropped peer must surface
/// as EPIPE from write(2), never as a process-killing signal — every
/// network entry point (server start, client connect, serve REPL) calls
/// this defensively.
void IgnoreSigpipe();

}  // namespace aigs::net

#endif  // AIGS_NET_WIRE_H_
