#include "util/rng.h"

namespace aigs {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  AIGS_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = Next();
  U128 m = static_cast<U128>(x) * static_cast<U128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<U128>(x) * static_cast<U128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace aigs
