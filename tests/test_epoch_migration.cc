// Epoch lifecycle (PR 5): cross-epoch session migration, warm-publish trie
// seeding, and the post-publish idle-session sweep.
//  (1) migration equivalence, the hard guarantee: for every registry policy
//      on trees and DAGs, a session saved on epoch E and migrated to epoch
//      E' produces a transcript bit-identical to a fresh E' session
//      replayed on the same answers (zero-divergence case) — for both the
//      saved-blob and the live-in-place migration paths;
//  (2) real divergence: shifted weights change the planner's questions;
//      divergent steps are folded via the observed-step appliers, surfaced
//      with exact counts, flagged in a subsequent Save, and the migrated
//      session still identifies the correct target;
//  (3) the divergence budget: exceeding it fails with FailedPrecondition
//      and (for live sessions) leaves the session untouched on its epoch;
//  (4) adversarial/malformed migration inputs — truncated blobs,
//      wrong-hierarchy blobs, out-of-range node ids, v1 blobs, divergence
//      on phase-automaton policies — all return Status, never abort;
//  (5) warm publish: the fresh trie is pre-seeded from the old epoch's
//      hottest prefixes (seeded/organic stats split; a fresh session asks
//      through warm prefixes without planner misses), and seeding onto a
//      snapshot where a prefix question no longer exists degrades
//      gracefully;
//  (6) the publish sweep: idle old-epoch sessions migrate automatically,
//      sessions mid-question stay pinned, and an explicitly migrated
//      session must re-Ask before answering.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aigs.h"
#include "core/policy_registry.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "service/engine.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;

using RecordedQuery = std::pair<Query::Kind, std::vector<NodeId>>;

std::vector<NodeId> QueryNodes(const Query& q) {
  return q.kind == Query::Kind::kReach ? std::vector<NodeId>{q.node}
                                       : q.choices;
}

/// Drives `id` for up to `max_steps` answered questions (SIZE_MAX = to the
/// end), recording the questions; returns the target when done was
/// reached, kInvalidNode otherwise.
NodeId Drive(Engine& engine, SessionId id, Oracle& oracle,
             std::size_t max_steps,
             std::vector<RecordedQuery>* recorded = nullptr) {
  for (std::size_t step = 0; step < max_steps; ++step) {
    const auto q = engine.Ask(id);
    AIGS_CHECK(q.ok());
    if (q->kind == Query::Kind::kDone) {
      return q->node;
    }
    if (recorded != nullptr) {
      recorded->emplace_back(q->kind, QueryNodes(*q));
    }
    AIGS_CHECK(engine.Answer(id, AnswerFromOracle(*q, oracle)).ok());
  }
  const auto q = engine.Ask(id);
  AIGS_CHECK(q.ok());
  return q->kind == Query::Kind::kDone ? q->node : kInvalidNode;
}

struct MigrationCase {
  std::string name;
  Hierarchy hierarchy;
  Distribution distribution;
  Distribution shifted;  // same node space, different weights
};

std::vector<MigrationCase> Cases() {
  std::vector<MigrationCase> cases;
  Rng rng(515151);
  {
    Hierarchy tree = MustBuild(RandomTree(48, rng));
    Distribution a = ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
    Distribution b = ZipfRandomDistribution(tree.NumNodes(), 2.0, rng);
    cases.push_back({"tree", std::move(tree), std::move(a), std::move(b)});
  }
  {
    Hierarchy dag = MustBuild(RandomDag(48, rng, 0.4));
    Distribution a = ZipfRandomDistribution(dag.NumNodes(), 2.0, rng);
    Distribution b = ZipfRandomDistribution(dag.NumNodes(), 2.0, rng);
    cases.push_back({"dag", std::move(dag), std::move(a), std::move(b)});
  }
  return cases;
}

/// Every registry policy spec the hierarchy supports (mirrors
/// test_plan_cache.cc; the scripted policy gets a complete question order).
std::vector<std::string> SpecsFor(const Hierarchy& h) {
  std::string full_order = "scripted:order=";
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    if (full_order.back() != '=') {
      full_order += '+';
    }
    full_order += std::to_string(v);
  }
  std::vector<std::string> specs = {
      "greedy",         "greedy_dag",     "greedy_naive",
      "naive",          "batched:k=3",    "cost_sensitive",
      "migs",           "migs:ordered=true",
      "wigs",           "top_down",       "topdown",
      full_order,
  };
  if (h.is_tree()) {
    specs.push_back("greedy_tree");
    specs.push_back("greedy_tree:scan=heap");
  }
  return specs;
}

std::shared_ptr<const CostModel> SomeCosts(std::size_t n) {
  Rng rng(7);
  return std::make_shared<const CostModel>(
      CostModel::UniformRandom(n, 1, 9, rng));
}

CatalogConfig ConfigFor(const MigrationCase& c, bool shifted = false) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(c.hierarchy);
  config.distribution = shifted ? c.shifted : c.distribution;
  config.cost_model = SomeCosts(c.hierarchy.NumNodes());
  config.policy_specs = SpecsFor(c.hierarchy);
  return config;
}

// ---- (1) zero-divergence migration equivalence -----------------------------

TEST(EpochMigration, SavedSessionMigratesBitIdenticalEveryPolicy) {
  for (const MigrationCase& c : Cases()) {
    Engine engine;
    ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
    for (const std::string& spec : SpecsFor(c.hierarchy)) {
      SCOPED_TRACE(c.name + "/" + spec);
      for (NodeId target = 0; target < c.hierarchy.NumNodes();
           target += 3) {
        // Record a partial session on epoch E and save it.
        ExactOracle oracle(c.hierarchy.reach(), target);
        auto id = engine.Open(spec);
        ASSERT_TRUE(id.ok());
        std::vector<RecordedQuery> prefix_questions;
        Drive(engine, *id, oracle, 2, &prefix_questions);
        auto blob = engine.Save(*id);
        ASSERT_TRUE(blob.ok());
        ASSERT_TRUE(engine.Close(*id).ok());

        // Publish E' with IDENTICAL weights: the planners reproduce every
        // recorded question, so migration must report zero divergence...
        ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
        auto migrated = engine.Migrate(*blob);
        ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
        EXPECT_EQ(migrated->divergent_steps, 0u);
        EXPECT_EQ(migrated->to_epoch, engine.epoch());

        // ...and the migrated session's full transcript must be
        // bit-identical to a fresh E' session replayed on the same
        // answers.
        ExactOracle oracle_migrated(c.hierarchy.reach(), target);
        ExactOracle oracle_fresh(c.hierarchy.reach(), target);
        std::vector<RecordedQuery> rest_migrated, fresh_questions;
        const NodeId found = Drive(engine, migrated->id, oracle_migrated,
                                   SIZE_MAX, &rest_migrated);
        auto fresh = engine.Open(spec);
        ASSERT_TRUE(fresh.ok());
        const NodeId found_fresh = Drive(engine, *fresh, oracle_fresh,
                                         SIZE_MAX, &fresh_questions);
        EXPECT_EQ(found, target);
        EXPECT_EQ(found_fresh, target);
        std::vector<RecordedQuery> migrated_all = prefix_questions;
        migrated_all.insert(migrated_all.end(), rest_migrated.begin(),
                            rest_migrated.end());
        EXPECT_EQ(migrated_all, fresh_questions);
        EXPECT_TRUE(engine.Close(migrated->id).ok());
        EXPECT_TRUE(engine.Close(*fresh).ok());
      }
    }
  }
}

TEST(EpochMigration, LiveSessionMigratesInPlaceKeepingItsId) {
  for (const MigrationCase& c : Cases()) {
    EngineOptions options;
    options.migration.sweep_on_publish = false;  // migrate explicitly below
    Engine engine(options);
    ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
    for (const std::string& spec : SpecsFor(c.hierarchy)) {
      SCOPED_TRACE(c.name + "/" + spec);
      const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
      ExactOracle oracle(c.hierarchy.reach(), target);
      auto id = engine.Open(spec);
      ASSERT_TRUE(id.ok());
      std::vector<RecordedQuery> prefix_questions;
      Drive(engine, *id, oracle, 2, &prefix_questions);

      ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
      auto result = engine.Migrate(*id);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->id, *id);
      EXPECT_EQ(result->divergent_steps, 0u);
      EXPECT_EQ(result->to_epoch, engine.epoch());

      ExactOracle oracle_rest(c.hierarchy.reach(), target);
      EXPECT_EQ(Drive(engine, *id, oracle_rest, SIZE_MAX), target);
      EXPECT_TRUE(engine.Close(*id).ok());
    }
  }
}

// ---- (2) real divergence under shifted weights -----------------------------

/// Independent divergence reference: replay `blob`'s steps through a
/// bare registry policy session built on (hierarchy, dist), counting steps
/// the planner does not reproduce. Exercises none of the engine's replay
/// code.
std::size_t ReferenceDivergence(const SerializedSession& saved,
                                const Hierarchy& h, const Distribution& dist,
                                const CostModel* costs) {
  PolicyContext context;
  context.hierarchy = &h;
  context.distribution = &dist;
  context.cost_model = costs;
  auto policy = PolicyRegistry::Global().Create(saved.policy_spec, context);
  AIGS_CHECK(policy.ok());
  auto session = (*policy)->NewSession();
  std::size_t divergent = 0;
  for (const TranscriptStep& step : saved.steps) {
    const Query planned = session->Next();
    const bool matches =
        planned.kind == step.kind &&
        (planned.kind == Query::Kind::kReach
             ? (step.nodes.size() == 1 && planned.node == step.nodes[0])
             : planned.choices == step.nodes);
    if (matches) {
      switch (step.kind) {
        case Query::Kind::kReach:
          session->OnReach(step.nodes[0], step.yes);
          break;
        case Query::Kind::kReachBatch:
          AIGS_CHECK(
              session->TryOnReachBatch(step.nodes, step.batch_answers).ok());
          break;
        case Query::Kind::kChoice:
          session->OnChoice(step.nodes, step.choice);
          break;
        case Query::Kind::kDone:
          AIGS_CHECK(false);
      }
    } else {
      ++divergent;
      AIGS_CHECK(session->TryApplyObserved(step).ok());
    }
  }
  return divergent;
}

TEST(EpochMigration, ShiftedWeightsDivergeWithExactCountsAndFlags) {
  // Candidate-state policies: these support divergent folds.
  const std::vector<std::string> specs = {"greedy", "greedy_naive", "naive",
                                          "batched:k=3", "cost_sensitive"};
  for (const MigrationCase& c : Cases()) {
    Engine engine;
    std::size_t diverged_sessions = 0;
    for (const std::string& spec : specs) {
      SCOPED_TRACE(c.name + "/" + spec);
      ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
      for (NodeId target = 0; target < c.hierarchy.NumNodes();
           target += 5) {
        ExactOracle oracle(c.hierarchy.reach(), target);
        auto id = engine.Open(spec);
        ASSERT_TRUE(id.ok());
        Drive(engine, *id, oracle, 3);
        auto blob = engine.Save(*id);
        ASSERT_TRUE(blob.ok());
        ASSERT_TRUE(engine.Close(*id).ok());

        // Shifted weights: the new epoch's planner asks different
        // questions at some prefixes.
        ASSERT_TRUE(engine.Publish(ConfigFor(c, /*shifted=*/true)).ok());
        auto migrated = engine.Migrate(*blob);
        ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();

        // The reported count matches an independent policy-level replay...
        auto saved = SessionCodec::Decode(*blob);
        ASSERT_TRUE(saved.ok());
        const std::shared_ptr<const CostModel> costs =
            SomeCosts(c.hierarchy.NumNodes());
        EXPECT_EQ(migrated->divergent_steps,
                  ReferenceDivergence(*saved, c.hierarchy, c.shifted,
                                      costs.get()));

        // ...and a re-Save carries exactly that many 'd' flags.
        auto resaved = engine.Save(migrated->id);
        ASSERT_TRUE(resaved.ok());
        auto decoded = SessionCodec::Decode(*resaved);
        ASSERT_TRUE(decoded.ok());
        std::size_t flagged = 0;
        for (const TranscriptStep& step : decoded->steps) {
          flagged += step.diverged ? 1 : 0;
        }
        EXPECT_EQ(flagged, migrated->divergent_steps);
        diverged_sessions += migrated->divergent_steps > 0 ? 1 : 0;

        // The migrated session still identifies the true target under the
        // new epoch's planner.
        ExactOracle oracle_rest(c.hierarchy.reach(), target);
        EXPECT_EQ(Drive(engine, migrated->id, oracle_rest, SIZE_MAX),
                  target);
        EXPECT_TRUE(engine.Close(migrated->id).ok());

        // Restore the unshifted epoch for the next target's recording.
        ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
      }
    }
    // Shifted Zipf weights must actually have moved some middle points —
    // otherwise this test pins nothing.
    EXPECT_GT(diverged_sessions, 0u) << c.name;
  }
}

TEST(EpochMigration, MigratedDivergentSessionResumesExactlyOnItsEpoch) {
  // A saved MIGRATED session (with 'd' flags) must round-trip through the
  // exact Resume path on the epoch it was migrated to.
  const MigrationCase c = std::move(Cases().front());
  Engine engine;
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  std::string diverged_blob;
  for (NodeId probe = 0; probe < c.hierarchy.NumNodes(); ++probe) {
    ExactOracle oracle(c.hierarchy.reach(), probe);
    auto id = engine.Open("greedy_naive");
    ASSERT_TRUE(id.ok());
    Drive(engine, *id, oracle, 3);
    auto blob = engine.Save(*id);
    ASSERT_TRUE(blob.ok());
    ASSERT_TRUE(engine.Close(*id).ok());
    ASSERT_TRUE(engine.Publish(ConfigFor(c, /*shifted=*/true)).ok());
    auto migrated = engine.Migrate(*blob);
    ASSERT_TRUE(migrated.ok());
    auto resaved = engine.Save(migrated->id);
    ASSERT_TRUE(resaved.ok());
    ASSERT_TRUE(engine.Close(migrated->id).ok());
    if (migrated->divergent_steps > 0) {
      diverged_blob = *resaved;
      break;
    }
    ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  }
  ASSERT_FALSE(diverged_blob.empty()) << "no probe diverged; widen the scan";
  // Resume on the CURRENT (shifted) epoch: flagged steps replay through the
  // observed fold, unflagged ones must match the planner exactly.
  auto resumed = engine.Resume(diverged_blob);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExactOracle oracle(c.hierarchy.reach(), target);
  (void)target;
  EXPECT_TRUE(engine.Close(*resumed).ok());
}

// ---- (3) divergence budget --------------------------------------------------

/// A two-branch weighted tree where the greedy first question follows the
/// heavy side: flipping the weights guarantees divergence at step 0.
struct BudgetFixture {
  Hierarchy hierarchy;
  Distribution heavy_left;
  Distribution heavy_right;

  static BudgetFixture Make() {
    Digraph g;
    g.AddNodes(7);
    g.AddEdge(0, 1);
    g.AddEdge(0, 2);
    g.AddEdge(1, 3);
    g.AddEdge(1, 4);
    g.AddEdge(2, 5);
    g.AddEdge(2, 6);
    Hierarchy h = MustBuild(std::move(g));
    auto left = Distribution::FromWeights({1, 50, 1, 40, 30, 1, 1});
    auto right = Distribution::FromWeights({1, 1, 50, 1, 1, 40, 30});
    AIGS_CHECK(left.ok() && right.ok());
    return {std::move(h), *std::move(left), *std::move(right)};
  }

  CatalogConfig Config(bool right) const {
    CatalogConfig config;
    config.hierarchy = UnownedHierarchy(hierarchy);
    config.distribution = right ? heavy_right : heavy_left;
    config.policy_specs = {"greedy", "wigs"};
    return config;
  }
};

TEST(EpochMigration, BudgetZeroRefusesDivergentReplayAndKeepsTheSession) {
  const BudgetFixture f = BudgetFixture::Make();
  EngineOptions options;
  options.migration.max_divergence = 0;
  options.migration.sweep_on_publish = false;
  Engine engine(options);
  ASSERT_TRUE(engine.Publish(f.Config(false)).ok());

  // Target 6 lives right of the root; under heavy-left weights the first
  // greedy question probes the left side, so the transcript's first step
  // cannot match the heavy-right planner.
  ExactOracle oracle(f.hierarchy.reach(), 6);
  auto id = engine.Open("greedy");
  ASSERT_TRUE(id.ok());
  std::vector<RecordedQuery> asked;
  Drive(engine, *id, oracle, 1, &asked);
  ASSERT_EQ(asked.size(), 1u);
  auto blob = engine.Save(*id);
  ASSERT_TRUE(blob.ok());

  ASSERT_TRUE(engine.Publish(f.Config(true)).ok());
  {
    // Sanity: the new epoch really asks a different first question.
    auto fresh = engine.Open("greedy");
    ASSERT_TRUE(fresh.ok());
    auto q = engine.Ask(*fresh);
    ASSERT_TRUE(q.ok());
    ASSERT_NE(QueryNodes(*q), asked[0].second);
    ASSERT_TRUE(engine.Close(*fresh).ok());
  }

  // Blob migration: budget 0 → FailedPrecondition.
  const auto from_blob = engine.Migrate(*blob);
  ASSERT_FALSE(from_blob.ok());
  EXPECT_EQ(from_blob.status().code(), StatusCode::kFailedPrecondition);

  // Live migration: same refusal, and the session stays usable on its old
  // epoch (the failed attempt must not have touched it).
  const std::uint64_t old_epoch = 1;
  const auto in_place = engine.Migrate(*id);
  ASSERT_FALSE(in_place.ok());
  EXPECT_EQ(in_place.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Stats().sessions_by_epoch.at(old_epoch), 1u);
  ExactOracle oracle_rest(f.hierarchy.reach(), 6);
  EXPECT_EQ(Drive(engine, *id, oracle_rest, SIZE_MAX), 6u);
  EXPECT_TRUE(engine.Close(*id).ok());

  // With budget 1 the same blob migrates.
  EngineOptions lenient;
  lenient.migration.max_divergence = 1;
  Engine engine2(lenient);
  ASSERT_TRUE(engine2.Publish(f.Config(true)).ok());
  auto migrated = engine2.Migrate(*blob);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_EQ(migrated->divergent_steps, 1u);
}

// ---- (4) adversarial and malformed inputs ----------------------------------

TEST(EpochMigration, MalformedInputsReturnStatusNeverAbort) {
  const BudgetFixture f = BudgetFixture::Make();
  Engine engine;
  ASSERT_TRUE(engine.Publish(f.Config(false)).ok());
  ExactOracle oracle(f.hierarchy.reach(), 6);
  auto id = engine.Open("greedy");
  ASSERT_TRUE(id.ok());
  Drive(engine, *id, oracle, 2);
  auto blob = engine.Save(*id);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(engine.Close(*id).ok());

  {  // Truncated blob: decoding fails cleanly.
    const std::string truncated = blob->substr(0, blob->size() / 2);
    const auto result = engine.Migrate(truncated);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Garbage: not a session at all.
    ASSERT_FALSE(engine.Migrate("not a session").ok());
  }
  {  // Wrong hierarchy: recorded node ids do not transfer.
    Rng rng(99);
    Hierarchy other = MustBuild(RandomTree(31, rng));
    CatalogConfig config;
    config.hierarchy = UnownedHierarchy(other);
    config.distribution = EqualDistribution(other.NumNodes());
    config.policy_specs = {"greedy"};
    Engine other_engine;
    ASSERT_TRUE(other_engine.Publish(std::move(config)).ok());
    const auto result = other_engine.Migrate(*blob);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
  {  // Out-of-range node id with a forged-but-matching hierarchy digest:
     // rejected by per-step shape validation, not by a crash.
    auto saved = SessionCodec::Decode(*blob);
    ASSERT_TRUE(saved.ok());
    ASSERT_FALSE(saved->steps.empty());
    saved->steps[0].nodes[0] = 4000000;
    const auto result = engine.Migrate(SessionCodec::Encode(*saved));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  }
  {  // v1 blob (no hierarchy digest): only the exact-fingerprint case
     // qualifies for migration; after a weight shift it must refuse.
    auto saved = SessionCodec::Decode(*blob);
    ASSERT_TRUE(saved.ok());
    saved->hierarchy_fingerprint = 0;
    const std::string v1ish = SessionCodec::Encode(*saved);
    ASSERT_TRUE(engine.Migrate(v1ish).ok());  // fingerprint still current
    ASSERT_TRUE(engine.Publish(f.Config(true)).ok());
    const auto result = engine.Migrate(v1ish);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(EpochMigration, LikelihoodOrderedMigsAbsorbsShiftedWeightDivergence) {
  // migs:ordered batches categories by reach weight, so shifted weights
  // genuinely reorder its questions. PR 6 gives the phase automata
  // observed-step folds: migration must now SUCCEED across the shift, with
  // exact divergence counts, and still identify the true target.
  for (const MigrationCase& c : Cases()) {
    SCOPED_TRACE(c.name);
    Engine engine;
    std::size_t diverged_sessions = 0;
    for (NodeId target = 0; target < c.hierarchy.NumNodes(); target += 5) {
      ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
      ExactOracle oracle(c.hierarchy.reach(), target);
      auto id = engine.Open("migs:ordered=true");
      ASSERT_TRUE(id.ok());
      Drive(engine, *id, oracle, 3);
      auto blob = engine.Save(*id);
      ASSERT_TRUE(blob.ok());
      ASSERT_TRUE(engine.Close(*id).ok());

      ASSERT_TRUE(engine.Publish(ConfigFor(c, /*shifted=*/true)).ok());
      auto migrated = engine.Migrate(*blob);
      ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
      auto saved = SessionCodec::Decode(*blob);
      ASSERT_TRUE(saved.ok());
      const std::shared_ptr<const CostModel> costs =
          SomeCosts(c.hierarchy.NumNodes());
      EXPECT_EQ(migrated->divergent_steps,
                ReferenceDivergence(*saved, c.hierarchy, c.shifted,
                                    costs.get()));
      diverged_sessions += migrated->divergent_steps > 0 ? 1 : 0;

      ExactOracle rest(c.hierarchy.reach(), target);
      EXPECT_EQ(Drive(engine, migrated->id, rest, SIZE_MAX), target);
      EXPECT_TRUE(engine.Close(migrated->id).ok());
    }
    // The shift must actually have reordered some batches — otherwise this
    // test pins nothing.
    EXPECT_GT(diverged_sessions, 0u);
  }
}

TEST(EpochMigration, ObliviousPhaseAutomataFoldInjectedObservedSteps) {
  // wigs and top_down ignore the distribution, so weight shifts alone
  // never diverge them. Synthesize divergence instead: prepend a
  // consistent fact their planner would not ask — "reach 4 no" (node 4 is
  // a leaf off the heavy path, and the target 6 is not under it). The
  // fold must absorb it (divergent_steps == 1) and the rest of the
  // transcript must still replay exactly to the true target.
  const BudgetFixture f = BudgetFixture::Make();
  for (const std::string& spec : {std::string("wigs"),
                                  std::string("top_down")}) {
    SCOPED_TRACE(spec);
    CatalogConfig config = f.Config(false);
    config.policy_specs = {"greedy", "wigs", "top_down"};
    Engine engine;
    ASSERT_TRUE(engine.Publish(std::move(config)).ok());
    ExactOracle oracle(f.hierarchy.reach(), 6);
    auto id = engine.Open(spec);
    ASSERT_TRUE(id.ok());
    Drive(engine, *id, oracle, 2);
    auto blob = engine.Save(*id);
    ASSERT_TRUE(blob.ok());
    ASSERT_TRUE(engine.Close(*id).ok());

    auto saved = SessionCodec::Decode(*blob);
    ASSERT_TRUE(saved.ok());
    TranscriptStep injected;
    injected.kind = Query::Kind::kReach;
    injected.nodes = {4};
    injected.yes = false;
    saved->steps.insert(saved->steps.begin(), injected);

    auto migrated = engine.Migrate(SessionCodec::Encode(*saved));
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    EXPECT_EQ(migrated->divergent_steps, 1u);
    ExactOracle rest(f.hierarchy.reach(), 6);
    EXPECT_EQ(Drive(engine, migrated->id, rest, SIZE_MAX), 6u);
    EXPECT_TRUE(engine.Close(migrated->id).ok());
  }
}

TEST(EpochMigration, ContradictoryObservedStepsStillRefuseGracefully) {
  // A crafted blob whose observed step contradicts the transcript (a
  // "none of these"/no that rules out the path the picks descended) must
  // fail with a Status, never the fatal in-process path, and leave no
  // session behind.
  const BudgetFixture f = BudgetFixture::Make();
  Engine engine;
  ASSERT_TRUE(engine.Publish(f.Config(false)).ok());
  ExactOracle oracle(f.hierarchy.reach(), 6);
  auto id = engine.Open("wigs");
  ASSERT_TRUE(id.ok());
  Drive(engine, *id, oracle, 2);
  auto blob = engine.Save(*id);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(engine.Close(*id).ok());

  auto saved = SessionCodec::Decode(*blob);
  ASSERT_TRUE(saved.ok());
  // "Target not under the root" contradicts everything.
  TranscriptStep poison;
  poison.kind = Query::Kind::kReach;
  poison.nodes = {0};
  poison.yes = false;
  saved->steps.insert(saved->steps.begin(), poison);
  const auto result = engine.Migrate(SessionCodec::Encode(*saved));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- (5) warm publish -------------------------------------------------------

TEST(EpochMigration, WarmPublishSeedsTheFreshTrieFromHotPrefixes) {
  const MigrationCase c = std::move(Cases().front());
  Engine engine;  // warm_publish defaults on
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

  // Heat epoch 1's trie: several sessions share the early prefixes.
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  for (int i = 0; i < 4; ++i) {
    ExactOracle oracle(c.hierarchy.reach(), target);
    auto id = engine.Open("greedy_naive");
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(Drive(engine, *id, oracle, SIZE_MAX), target);
    ASSERT_TRUE(engine.Close(*id).ok());
  }

  // Publish with the SAME weights: the seeded plans equal the old ones, so
  // a fresh session must walk its whole transcript on pure trie hits.
  // Publish returns after the O(1) swap; the seeding itself runs on the
  // background drain worker, so wait for it before reading trie stats.
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  engine.WaitForDrain();
  const std::shared_ptr<PlanCache> trie = engine.plan_cache();
  ASSERT_NE(trie, nullptr);
  const PlanCacheStats seeded = trie->stats();
  EXPECT_GT(seeded.seeded_inserts, 0u);
  EXPECT_EQ(seeded.seeded_inserts, seeded.inserts);

  ExactOracle oracle(c.hierarchy.reach(), target);
  auto id = engine.Open("greedy_naive");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(Drive(engine, *id, oracle, SIZE_MAX), target);
  ASSERT_TRUE(engine.Close(*id).ok());
  const PlanCacheStats after = trie->stats();
  EXPECT_GT(after.hits, 0u);
  EXPECT_GT(after.seeded_hits, 0u);
  EXPECT_EQ(after.misses, seeded.misses)
      << "the warm-seeded trie should serve the whole repeat transcript";

  // The explicit Warm() path reports a replayed-prefix count too.
  const auto warmed = engine.Warm();
  ASSERT_TRUE(warmed.ok()) << warmed.status().ToString();
  EXPECT_GT(*warmed, 0u);
}

TEST(EpochMigration, WarmSeedingOntoSmallerHierarchySkipsStalePrefixes) {
  const MigrationCase c = std::move(Cases().front());
  Engine engine;
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  for (int i = 0; i < 3; ++i) {
    ExactOracle oracle(c.hierarchy.reach(), target);
    auto id = engine.Open("greedy");
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(Drive(engine, *id, oracle, SIZE_MAX), target);
    ASSERT_TRUE(engine.Close(*id).ok());
  }
  // The next epoch serves a much smaller hierarchy: most recorded prefix
  // questions name nodes that no longer exist. Seeding must skip them
  // without error (and sweep migration of nothing must be a no-op).
  Rng rng(4);
  Hierarchy small = MustBuild(RandomTree(5, rng));
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(small);
  config.distribution = EqualDistribution(small.NumNodes());
  config.policy_specs = {"greedy"};
  ASSERT_TRUE(engine.Publish(std::move(config)).ok());
  engine.WaitForDrain();
  auto id = engine.Open("greedy");
  ASSERT_TRUE(id.ok());
  ExactOracle oracle(small.reach(), 3);
  EXPECT_EQ(Drive(engine, *id, oracle, SIZE_MAX), 3u);
  EXPECT_TRUE(engine.Close(*id).ok());
}

// ---- (6) the publish sweep --------------------------------------------------

TEST(EpochMigration, PublishSweepMigratesIdleSessionsAndSkipsMidQuestion) {
  const MigrationCase c = std::move(Cases().front());
  Engine engine;  // sweep_on_publish defaults on
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());

  // An idle session: answered its last shown question (no pending).
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  ExactOracle idle_oracle(c.hierarchy.reach(), target);
  auto idle = engine.Open("greedy_naive");
  ASSERT_TRUE(idle.ok());
  Drive(engine, *idle, idle_oracle, 2);
  {
    // Drain the resolved pending question so the session sits between an
    // answer and its next Ask — the sweep's definition of migratable.
    auto q = engine.Ask(*idle);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(engine.Answer(*idle, AnswerFromOracle(*q, idle_oracle))
                    .ok());
  }
  // A mid-question session: the client was shown a question and owes the
  // answer; migrating would change it under them.
  auto waiting = engine.Open("greedy_naive");
  ASSERT_TRUE(waiting.ok());
  ASSERT_TRUE(engine.Ask(*waiting).ok());

  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  engine.WaitForDrain();  // the sweep runs on the background worker
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.epoch, 2u);
  ASSERT_EQ(stats.sessions_by_epoch.count(1), 1u);
  EXPECT_EQ(stats.sessions_by_epoch.at(1), 1u);  // the mid-question one
  EXPECT_EQ(stats.sessions_by_epoch.at(2), 1u);  // the idle one migrated
  EXPECT_GE(stats.sessions_migrated, 1u);

  // Both still finish correctly on their respective epochs.
  ExactOracle rest_idle(c.hierarchy.reach(), target);
  ExactOracle rest_waiting(c.hierarchy.reach(), target);
  EXPECT_EQ(Drive(engine, *idle, rest_idle, SIZE_MAX), target);
  EXPECT_EQ(Drive(engine, *waiting, rest_waiting, SIZE_MAX), target);
  EXPECT_TRUE(engine.Close(*idle).ok());
  EXPECT_TRUE(engine.Close(*waiting).ok());
}

TEST(EpochMigration, ExplicitMigrateForcesReAskBeforeAnswering) {
  const MigrationCase c = std::move(Cases().front());
  EngineOptions options;
  options.migration.sweep_on_publish = false;
  Engine engine(options);
  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  const NodeId target = static_cast<NodeId>(c.hierarchy.NumNodes() - 1);
  ExactOracle oracle(c.hierarchy.reach(), target);
  auto id = engine.Open("greedy_naive");
  ASSERT_TRUE(id.ok());
  auto shown = engine.Ask(*id);
  ASSERT_TRUE(shown.ok());

  ASSERT_TRUE(engine.Publish(ConfigFor(c)).ok());
  auto migrated = engine.Migrate(*id);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();

  // Answering the stale question must be rejected until a fresh Ask.
  const Status stale =
      engine.Answer(*id, AnswerFromOracle(*shown, oracle));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
  ExactOracle rest(c.hierarchy.reach(), target);
  EXPECT_EQ(Drive(engine, *id, rest, SIZE_MAX), target);
  EXPECT_TRUE(engine.Close(*id).ok());
}

}  // namespace
}  // namespace aigs
