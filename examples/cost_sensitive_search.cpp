// Cost-sensitive search (CAIGS, §III-D): when questions have different
// prices — easy ones cheap, hard ones expensive — the cost-sensitive middle
// point (Definition 9) rebalances the decision tree toward cheap questions.
// Replays Example 4 step by step, then prices a larger campaign.
#include <cstdio>

#include "core/aigs.h"
#include "data/builtin.h"
#include "data/datasets.h"
#include "eval/decision_tree.h"
#include "eval/evaluator.h"
#include "util/string_util.h"

using namespace aigs;  // NOLINT — example brevity

int main() {
  // ---- Example 4 (Fig. 3): 4-node chain, node "3" costs $5 --------------
  auto h = Hierarchy::Build(BuildFig3Hierarchy());
  if (!h.ok()) {
    std::fprintf(stderr, "%s\n", h.status().ToString().c_str());
    return 1;
  }
  const Distribution equal = EqualDistribution(4);
  const CostModel prices = Fig3CostModel();

  GreedyTreePolicy blind(*h, equal);
  CostSensitiveGreedyPolicy aware(*h, equal, prices);

  auto blind_tree = DecisionTree::Build(blind, *h);
  auto aware_tree = DecisionTree::Build(aware, *h);
  if (!blind_tree.ok() || !aware_tree.ok()) {
    std::fprintf(stderr, "decision tree construction failed\n");
    return 1;
  }
  std::printf("Fig. 3 chain 1->2->3->4 with prices c(1)=c(2)=c(4)=$1, "
              "c(3)=$5\n");
  std::printf("  cost-blind greedy:     expected bill $%s  (paper: $6)\n",
              FormatDouble(blind_tree->ExpectedPricedCost(equal, prices))
                  .c_str());
  std::printf("  cost-sensitive greedy: expected bill $%s  (paper: $4.25)\n\n",
              FormatDouble(aware_tree->ExpectedPricedCost(equal, prices))
                  .c_str());
  std::printf("cost-sensitive decision tree:\n%s\n",
              aware_tree->ToDot(*h).c_str());

  // ---- A larger campaign with random question prices ---------------------
  const Dataset dataset = MakeAmazonDataset(0.08);
  Rng rng(11);
  const CostModel campaign_prices =
      CostModel::UniformRandom(dataset.hierarchy.NumNodes(), 1, 10, rng);
  GreedyTreePolicy campaign_blind(dataset.hierarchy,
                                  dataset.real_distribution);
  CostSensitiveGreedyPolicy campaign_aware(
      dataset.hierarchy, dataset.real_distribution, campaign_prices);
  EvalOptions options;
  options.cost_model = &campaign_prices;
  const double blind_bill =
      EvaluateExact(campaign_blind, dataset.hierarchy,
                    dataset.real_distribution, options)
          .expected_priced_cost;
  const double aware_bill =
      EvaluateExact(campaign_aware, dataset.hierarchy,
                    dataset.real_distribution, options)
          .expected_priced_cost;
  std::printf("campaign on %s with prices $1-$10:\n",
              DescribeDataset(dataset).c_str());
  std::printf("  cost-blind greedy:     $%s per object\n",
              FormatDouble(blind_bill).c_str());
  std::printf("  cost-sensitive greedy: $%s per object (%.1f%% cheaper)\n",
              FormatDouble(aware_bill).c_str(),
              (1 - aware_bill / blind_bill) * 100);
  return 0;
}
