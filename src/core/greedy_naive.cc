#include "core/greedy_naive.h"

#include "core/middle_point.h"
#include "core/split_weight_index.h"
#include "graph/candidate_set.h"

namespace aigs {
namespace {

// Reference backend: per-candidate BFS rescans (Algorithm 2/3 verbatim).
class GreedyNaiveBfsSession final : public SearchSession {
 public:
  GreedyNaiveBfsSession(const Hierarchy& h, const std::vector<Weight>& weights)
      : hierarchy_(&h),
        graph_(&h.graph()),
        weights_(&weights),
        candidates_(h.graph()),
        scratch_(h.NumNodes()),
        root_(h.root()) {
    total_weight_ = 0;
    for (const Weight w : weights) {
      total_weight_ += w;
    }
  }

  Query PlanQuestion() const override {
    if (candidates_.alive_count() == 1) {
      return Query::Done(candidates_.SoleCandidate());
    }
    const MiddlePoint mp = FindMiddlePointNaive(
        *graph_, candidates_, root_, *weights_, total_weight_, scratch_);
    AIGS_CHECK(mp.node != kInvalidNode);
    planned_node_ = mp.node;
    planned_reach_weight_ = mp.reach_weight;
    return Query::ReachQuery(mp.node);
  }

  void ApplyReach(NodeId q, bool yes) override {
    // w(R(q) ∩ C): reuse the planner's value when this session planned q
    // itself; recompute only for a cache-supplied question.
    Weight reach_weight;
    if (plan_settled() && planned_node_ == q) {
      reach_weight = planned_reach_weight_;
    } else {
      reach_weight = 0;
      scratch_.ForwardBfs(
          *graph_, q,
          [this](NodeId x) { return candidates_.IsAlive(x); },
          [&](NodeId x) { reach_weight += (*weights_)[x]; });
    }
    if (yes) {
      candidates_.RestrictToReachable(q);
      root_ = q;
      total_weight_ = reach_weight;
    } else {
      candidates_.RemoveReachable(q);
      total_weight_ -= reach_weight;
    }
  }

  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    const NodeId q = step.nodes[0];
    if (q >= hierarchy_->NumNodes()) {
      return Status::OutOfRange("observed question node " +
                                std::to_string(q) +
                                " outside the hierarchy");
    }
    // Fold through the reachability index, not a BFS from q: an observed
    // q may itself be eliminated (dead), where the alive-predicate BFS
    // cannot start (same reasoning as ScriptedSession).
    const ReachabilityIndex& reach = hierarchy_->reach();
    std::vector<NodeId> to_kill;
    Weight killed_weight = 0;
    candidates_.bits().ForEachSetBit([&](std::size_t raw) {
      const NodeId t = static_cast<NodeId>(raw);
      if (reach.Reaches(q, t) != step.yes) {
        to_kill.push_back(t);
        killed_weight += (*weights_)[t];
      }
    });
    if (to_kill.size() == candidates_.alive_count()) {
      return Status::InvalidArgument(
          "observed answer for node " + std::to_string(q) +
          " would eliminate every candidate (inconsistent transcript)");
    }
    if (step.yes) {
      if (!candidates_.IsAlive(q) && !to_kill.empty()) {
        // A dead q whose yes still splits the candidates cannot come from
        // a genuine same-hierarchy transcript; the rooted middle-point
        // scan cannot survive a dead root, so refuse rather than guess.
        return Status::Unimplemented(
            "observed yes for eliminated node " + std::to_string(q) +
            " still splits the candidates");
      }
      if (candidates_.IsAlive(q)) {
        root_ = q;  // q alive ⇒ the old root reaches q ⇒ root moves down
      }
    }
    for (const NodeId t : to_kill) {
      candidates_.KillOne(t);
    }
    total_weight_ -= killed_weight;
    return Status::OK();
  }

 private:
  const Hierarchy* hierarchy_;
  const Digraph* graph_;
  const std::vector<Weight>* weights_;
  CandidateSet candidates_;
  mutable BfsScratch scratch_;
  NodeId root_;
  Weight total_weight_ = 0;
  // Planner memo: the last planned pivot and its reach weight, so the
  // common planned-locally path applies in O(1) extra work.
  mutable NodeId planned_node_ = kInvalidNode;
  mutable Weight planned_reach_weight_ = 0;
};

// Fast backend: incremental split weights + dominance-pruned selection.
// Construction is O(1) — the session is an overlay over the policy's base.
class GreedyNaiveIndexSession final : public SearchSession {
 public:
  explicit GreedyNaiveIndexSession(const SplitWeightBase& base)
      : index_(base) {}

  Query PlanQuestion() const override {
    if (index_.AliveCount() == 1) {
      return Query::Done(index_.Target());
    }
    return Query::ReachQuery(index_.FindMiddlePoint().node);
  }

  void ApplyReach(NodeId q, bool yes) override {
    if (yes) {
      index_.ApplyYes(q);
    } else {
      index_.ApplyNo(q);
    }
  }

  Status ApplyObservedStep(const TranscriptStep& step) override {
    if (step.kind != Query::Kind::kReach) {
      return SearchSession::ApplyObservedStep(step);
    }
    return index_.TryApplyObservedReach(step.nodes[0], step.yes);
  }

 private:
  SplitWeightIndex index_;
};

}  // namespace

GreedyNaivePolicy::GreedyNaivePolicy(const Hierarchy& hierarchy,
                                     const Distribution& dist,
                                     GreedyNaiveOptions options)
    : hierarchy_(&hierarchy),
      weights_(options.use_rounded_weights ? RoundWeights(dist, options.rounding)
                                           : dist.weights()),
      options_(options) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  if (options_.backend == SelectionBackend::kSplitIndex) {
    base_ = std::make_unique<SplitWeightBase>(hierarchy, weights_);
  }
}

std::unique_ptr<SearchSession> GreedyNaivePolicy::NewSession() const {
  if (options_.backend == SelectionBackend::kBfsRescan) {
    return std::make_unique<GreedyNaiveBfsSession>(*hierarchy_, weights_);
  }
  return std::make_unique<GreedyNaiveIndexSession>(*base_);
}

}  // namespace aigs
