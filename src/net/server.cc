#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace aigs::net {
namespace {

using Clock = std::chrono::steady_clock;

/// One accepted connection, owned by exactly one worker.
struct Connection {
  std::string read_buffer;
  std::string write_buffer;
  Clock::time_point last_active = Clock::now();
  /// Set when corrupt framing (or a write error) condemns the connection;
  /// pending response bytes are still flushed best-effort first.
  bool close_after_flush = false;
};

}  // namespace

/// One worker event loop: an epoll set, a wake eventfd, a handoff queue of
/// freshly accepted fds, and the connections it owns.
struct AigsServer::Worker {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mutex;               // guards pending only
  std::vector<int> pending;       // fds handed off by the acceptor
  std::unordered_map<int, Connection> connections;
};

WireResponse HandleRequest(Engine& engine, const WireRequest& request) {
  WireResponse response;
  response.op = request.op;
  Status status = Status::OK();
  switch (request.op) {
    case WireOp::kOpen: {
      auto id = engine.Open(request.text, request.id);
      if (id.ok()) {
        response.id = *id;
      }
      status = id.status();
      break;
    }
    case WireOp::kAsk: {
      auto query = engine.Ask(request.id);
      if (query.ok()) {
        response.query = *query;
      }
      status = query.status();
      break;
    }
    case WireOp::kAnswer:
      status = engine.Answer(request.id, request.answer);
      break;
    case WireOp::kSave: {
      auto blob = engine.Save(request.id);
      if (blob.ok()) {
        response.text = *std::move(blob);
      }
      status = blob.status();
      break;
    }
    case WireOp::kResume: {
      auto id = engine.Resume(request.text, request.id);
      if (id.ok()) {
        response.id = *id;
      }
      status = id.status();
      break;
    }
    case WireOp::kMigrate: {
      // Empty blob = migrate the live session `id` in place; a blob
      // migrates saved state under the proposed id.
      auto result = request.text.empty()
                        ? engine.Migrate(request.id)
                        : engine.Migrate(request.text, request.id);
      if (result.ok()) {
        response.migrate = *result;
        response.id = result->id;
      }
      status = result.status();
      break;
    }
    case WireOp::kClose:
      status = engine.Close(request.id);
      break;
    case WireOp::kStats: {
      const EngineStats stats = engine.Stats();
      response.stats.epoch = stats.epoch;
      response.stats.live_sessions = stats.live_sessions;
      response.stats.ops = stats.ops;
      break;
    }
  }
  if (!status.ok()) {
    return ErrorResponse(request.op, status);
  }
  return response;
}

AigsServer::AigsServer(Engine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

AigsServer::~AigsServer() { Stop(); }

Status AigsServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  IgnoreSigpipe();
  std::size_t workers = options_.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = std::min<std::size_t>(4, hw == 0 ? 1 : hw);
  }

  AIGS_ASSIGN_OR_RETURN(
      listen_fd_, ListenTcp(options_.listen, options_.backlog, &port_));
  AIGS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  accept_wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (accept_wake_fd_ < 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }

  running_.store(true, std::memory_order_release);
  started_ = true;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->wake_fd < 0) {
      const Status status =
          Status::IOError(std::string("worker setup: ") +
                          std::strerror(errno));
      CloseFd(worker->epoll_fd);
      CloseFd(worker->wake_fd);
      Stop();
      return status;
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = worker->wake_fd;
    (void)::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd,
                      &event);
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
    workers_.push_back(std::move(worker));
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AigsServer::Stop() {
  if (!started_) {
    return;
  }
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  if (accept_wake_fd_ >= 0) {
    (void)!::write(accept_wake_fd_, &one, sizeof(one));
  }
  for (const auto& worker : workers_) {
    if (worker->wake_fd >= 0) {
      (void)!::write(worker->wake_fd, &one, sizeof(one));
    }
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
    for (auto& [fd, conn] : worker->connections) {
      CloseFd(fd);
    }
    worker->connections.clear();
    CloseFd(worker->epoll_fd);
    CloseFd(worker->wake_fd);
  }
  workers_.clear();
  CloseFd(listen_fd_);
  CloseFd(accept_wake_fd_);
  listen_fd_ = -1;
  accept_wake_fd_ = -1;
  started_ = false;
  open_.store(0, std::memory_order_relaxed);
  // The PR-7 graceful-shutdown seam: an orderly stop leaves every acked
  // answer on disk regardless of the fsync policy.
  if (engine_.durable()) {
    (void)engine_.FlushDurable();
  }
}

void AigsServer::AcceptLoop() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  (void)::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.fd = accept_wake_fd_;
  (void)::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, accept_wake_fd_, &event);

  std::size_t next_worker = 0;
  while (running_.load(std::memory_order_acquire)) {
    epoll_event events[16];
    const int n = ::epoll_wait(epoll_fd, events, 16, 500);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd != listen_fd_) {
        continue;  // wake fd — the loop condition re-checks running_
      }
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          break;  // EAGAIN (drained) or a transient error — epoll re-arms
        }
        (void)SetNoDelay(fd);
        accepted_.fetch_add(1, std::memory_order_relaxed);
        open_.fetch_add(1, std::memory_order_relaxed);
        Worker& worker = *workers_[next_worker];
        next_worker = (next_worker + 1) % workers_.size();
        {
          std::lock_guard<std::mutex> lock(worker.mutex);
          worker.pending.push_back(fd);
        }
        const std::uint64_t one = 1;
        (void)!::write(worker.wake_fd, &one, sizeof(one));
      }
    }
  }
  CloseFd(epoll_fd);
}

void AigsServer::WorkerLoop(Worker& worker) {
  const auto close_connection = [&](int fd) {
    (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    CloseFd(fd);
    worker.connections.erase(fd);
    open_.fetch_sub(1, std::memory_order_relaxed);
  };
  const auto want_write = [&](int fd, bool enable) {
    epoll_event event{};
    event.events = EPOLLIN | (enable ? EPOLLOUT : 0u);
    event.data.fd = fd;
    (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, fd, &event);
  };
  // Flushes as much of the write buffer as the socket accepts; false means
  // the connection died (or finished a condemned flush) and was closed.
  const auto flush = [&](int fd, Connection& conn) -> bool {
    while (!conn.write_buffer.empty()) {
      const ssize_t n = ::send(fd, conn.write_buffer.data(),
                               conn.write_buffer.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          want_write(fd, true);
          return true;
        }
        close_connection(fd);  // EPIPE/ECONNRESET: peer is gone
        return false;
      }
      conn.write_buffer.erase(0, static_cast<std::size_t>(n));
    }
    if (conn.close_after_flush) {
      close_connection(fd);
      return false;
    }
    want_write(fd, false);
    return true;
  };

  const std::uint32_t idle_ms = options_.idle_timeout_ms;
  const int wait_ms =
      idle_ms == 0 ? 500 : static_cast<int>(std::min<std::uint32_t>(
                               500, std::max<std::uint32_t>(idle_ms / 2, 1)));
  auto last_idle_scan = Clock::now();

  while (running_.load(std::memory_order_acquire)) {
    epoll_event events[64];
    const int n = ::epoll_wait(worker.epoll_fd, events, 64, wait_ms);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker.wake_fd) {
        std::uint64_t drained = 0;
        (void)!::read(worker.wake_fd, &drained, sizeof(drained));
        std::vector<int> fresh;
        {
          std::lock_guard<std::mutex> lock(worker.mutex);
          fresh.swap(worker.pending);
        }
        for (const int new_fd : fresh) {
          epoll_event event{};
          event.events = EPOLLIN;
          event.data.fd = new_fd;
          if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, new_fd, &event) !=
              0) {
            CloseFd(new_fd);
            open_.fetch_sub(1, std::memory_order_relaxed);
            continue;
          }
          worker.connections.emplace(new_fd, Connection{});
        }
        continue;
      }
      auto it = worker.connections.find(fd);
      if (it == worker.connections.end()) {
        continue;
      }
      Connection& conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush(fd, conn)) {
          continue;
        }
      }
      if ((events[i].events & EPOLLIN) != 0) {
        conn.last_active = Clock::now();
        bool closed = false;
        char buffer[16384];
        for (;;) {
          const ssize_t r = ::recv(fd, buffer, sizeof(buffer), 0);
          if (r > 0) {
            conn.read_buffer.append(buffer, static_cast<std::size_t>(r));
            continue;
          }
          if (r == 0) {
            closed = true;  // orderly EOF — mid-frame leftovers just drop
            break;
          }
          if (errno == EINTR) {
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          }
          closed = true;
          break;
        }
        if (closed) {
          close_connection(fd);
          continue;
        }
        ServeConnection(worker, fd);
      }
    }
    if (idle_ms != 0) {
      const auto now = Clock::now();
      if (now - last_idle_scan >= std::chrono::milliseconds(wait_ms)) {
        last_idle_scan = now;
        const auto deadline = now - std::chrono::milliseconds(idle_ms);
        std::vector<int> stale;
        for (const auto& [fd, conn] : worker.connections) {
          if (conn.last_active < deadline) {
            stale.push_back(fd);
          }
        }
        for (const int fd : stale) {
          close_connection(fd);
        }
      }
    }
  }
}

void AigsServer::ServeConnection(Worker& worker, int fd) {
  auto it = worker.connections.find(fd);
  if (it == worker.connections.end()) {
    return;
  }
  Connection& conn = it->second;
  std::size_t offset = 0;
  while (!conn.close_after_flush) {
    std::string_view payload;
    std::size_t consumed = 0;
    const std::string_view rest =
        std::string_view(conn.read_buffer).substr(offset);
    const FrameStatus frame = ExtractFrame(rest, &payload, &consumed,
                                           nullptr, options_.max_payload);
    if (frame == FrameStatus::kNeedMore) {
      break;
    }
    if (frame == FrameStatus::kCorrupt) {
      // Length-derived frame boundaries cannot be resynchronized after a
      // corrupt header; flush whatever is owed, then close.
      conn.close_after_flush = true;
      break;
    }
    WireRequest request;
    const Status decoded = DecodeRequestPayload(payload, &request);
    const WireResponse response =
        decoded.ok() ? HandleRequest(engine_, request)
                     : ErrorResponse(request.op, decoded);
    conn.write_buffer += EncodeResponse(response);
    offset += consumed;
  }
  if (offset > 0) {
    conn.read_buffer.erase(0, offset);
  }
  if (!conn.write_buffer.empty() || conn.close_after_flush) {
    // Reuse the worker's flush-or-arm-EPOLLOUT logic by sending inline.
    while (!conn.write_buffer.empty()) {
      const ssize_t n = ::send(fd, conn.write_buffer.data(),
                               conn.write_buffer.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          epoll_event event{};
          event.events = EPOLLIN | EPOLLOUT;
          event.data.fd = fd;
          (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, fd, &event);
          return;
        }
        (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        CloseFd(fd);
        worker.connections.erase(fd);
        open_.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      conn.write_buffer.erase(0, static_cast<std::size_t>(n));
    }
    if (conn.close_after_flush) {
      (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
      CloseFd(fd);
      worker.connections.erase(fd);
      open_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace aigs::net
