// Small open-addressing hash map from NodeId to a trivially-copyable value.
// Search sessions overlay a handful of weight deltas on top of shared base
// arrays; std::unordered_map's allocation-per-node overhead dominates at that
// scale, so we use a flat power-of-two table with linear probing.
#ifndef AIGS_UTIL_NODE_MAP_H_
#define AIGS_UTIL_NODE_MAP_H_

#include <cstddef>
#include <vector>

#include "util/common.h"

namespace aigs {

/// Flat hash map NodeId -> V with linear probing. V must be trivially
/// copyable. Deletion is not supported (sessions only accumulate deltas).
template <typename V>
class NodeMap {
 public:
  NodeMap() { Rehash(16); }

  /// Number of stored keys.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all entries (keeps capacity).
  void Clear() {
    std::fill(slots_.begin(), slots_.end(), Slot{kInvalidNode, V{}});
    size_ = 0;
  }

  /// Returns a reference to the value for `key`, default-constructing it if
  /// absent.
  V& operator[](NodeId key) {
    AIGS_DCHECK(key != kInvalidNode);
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
    std::size_t i = Probe(key);
    if (slots_[i].key == kInvalidNode) {
      slots_[i].key = key;
      slots_[i].value = V{};
      ++size_;
    }
    return slots_[i].value;
  }

  /// Returns the value for `key`, or `fallback` if absent. No insertion.
  V GetOr(NodeId key, V fallback) const {
    const std::size_t i = Probe(key);
    return slots_[i].key == key ? slots_[i].value : fallback;
  }

  /// True iff `key` is present.
  bool Contains(NodeId key) const {
    return slots_[Probe(key)].key == key;
  }

  /// Invokes fn(key, value) for every entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kInvalidNode) {
        fn(s.key, s.value);
      }
    }
  }

 private:
  struct Slot {
    NodeId key = kInvalidNode;
    V value{};
  };

  static std::size_t Hash(NodeId key) {
    std::uint64_t x = key;
    x *= 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(x >> 32);
  }

  std::size_t Probe(NodeId key) const {
    std::size_t i = Hash(key) & mask_;
    while (slots_[i].key != kInvalidNode && slots_[i].key != key) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void Rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kInvalidNode) {
        (*this)[s.key] = s.value;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace aigs

#endif  // AIGS_UTIL_NODE_MAP_H_
