#include "service/plan_cache.h"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

#include "util/common.h"

namespace aigs {
namespace {

/// Approximate resident size of one node: the edge string (stored twice —
/// once in the node for export, once in the intern key), the query's
/// choice vector, and a flat allowance for the two map entries + LRU link.
constexpr std::size_t kNodeOverhead = 160;

std::size_t BaseNodeBytes(std::string_view edge) {
  return 2 * edge.size() + kNodeOverhead;
}

std::size_t QueryBytes(const Query& query) {
  return query.choices.size() * sizeof(NodeId);
}

}  // namespace

std::size_t PlanCache::ChildHash::Mix(PlanPrefixId parent,
                                      std::string_view edge) {
  std::size_t h = std::hash<std::string_view>{}(edge);
  h ^= parent + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  // Remix so both the stripe selector and the bucket index see well-spread
  // bits (stripe = h % stripes would otherwise correlate with buckets).
  h ^= h >> 33;
  h *= 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  return h;
}

PlanCache::PlanCache(PlanCacheOptions options)
    : options_(options),
      stripes_(options.num_stripes == 0 ? 1 : options.num_stripes) {
  stripe_budget_ = options_.max_bytes / stripes_.size();
  if (stripe_budget_ == 0) {
    stripe_budget_ = 1;
  }
}

PlanPrefixId PlanCache::RootFor(std::string_view policy_spec) {
  return Advance(kNoPlanPrefix, policy_spec);
}

PlanPrefixId PlanCache::Advance(PlanPrefixId from,
                                std::string_view edge_line) {
  const std::size_t stripe_index =
      ChildHash::Mix(from, edge_line) % stripes_.size();
  Stripe& stripe = stripes_[stripe_index];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.children.find(ChildRef{from, edge_line});
  if (it != stripe.children.end()) {
    return it->second;
  }
  // Allocate an id that encodes the home stripe so Lookup/Insert relock
  // the same stripe from the id alone. Ids are never reused — an evicted
  // path re-interns under fresh ids, and stale ids held by sessions just
  // miss.
  const PlanPrefixId id =
      stripe.next_seq++ * stripes_.size() + stripe_index + 1;
  Node node;
  node.parent = from;
  node.edge = std::string(edge_line);
  node.bytes = BaseNodeBytes(edge_line);
  const auto [node_it, inserted] = stripe.nodes.emplace(id, std::move(node));
  AIGS_DCHECK(inserted);
  stripe.children.emplace(ChildKey{from, std::string(edge_line)}, id);
  stripe.lru.push_front(id);
  node_it->second.lru_it = stripe.lru.begin();
  stripe.bytes += node_it->second.bytes;
  EvictOver(stripe);
  return id;
}

std::optional<Query> PlanCache::Lookup(PlanPrefixId id) {
  if (id == kNoPlanPrefix) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Stripe& stripe = stripes_[StripeOf(id)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.nodes.find(id);
  if (it == stripe.nodes.end() || !it->second.has_question) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (it->second.seeded) {
    seeded_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  ++it->second.hits;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
  return it->second.question;
}

void PlanCache::Insert(PlanPrefixId id, const Query& query, bool seeded) {
  if (id == kNoPlanPrefix) {
    return;
  }
  Stripe& stripe = stripes_[StripeOf(id)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.nodes.find(id);
  if (it == stripe.nodes.end()) {
    // The node was evicted since the caller interned it; a later Advance
    // along the same path re-interns a fresh id. Nothing to attach to.
    return;
  }
  Node& node = it->second;
  if (node.has_question) {
    // Determinism makes both values identical; only the recency changes.
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, node.lru_it);
    return;
  }
  node.question = query;
  node.has_question = true;
  node.seeded = seeded;
  stripe.bytes += QueryBytes(query);
  node.bytes += QueryBytes(query);
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, node.lru_it);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (seeded) {
    seeded_inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  EvictOver(stripe);
}

void PlanCache::EvictOver(Stripe& stripe) {
  // LRU eviction from the stripe tail; the freshest node is never evicted
  // (a single oversized entry beats thrashing on every insert). Evicting a
  // node drops its intern entry too, so the path re-interns cleanly later;
  // surviving descendants keep working under their existing ids.
  while (stripe.bytes > stripe_budget_ && stripe.nodes.size() > 1) {
    const PlanPrefixId victim_id = stripe.lru.back();
    const auto victim = stripe.nodes.find(victim_id);
    AIGS_DCHECK(victim != stripe.nodes.end());
    stripe.bytes -= victim->second.bytes;
    // find-then-erase: heterogeneous erase is C++23, this project is C++20.
    const auto child_it = stripe.children.find(
        ChildRef{victim->second.parent, victim->second.edge});
    if (child_it != stripe.children.end()) {
      stripe.children.erase(child_it);
    }
    stripe.lru.pop_back();
    stripe.nodes.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<HotPrefix> PlanCache::HottestPrefixes(
    std::size_t max_prefixes) const {
  if (max_prefixes == 0) {
    return {};
  }
  // Snapshot every resident node (one stripe lock at a time), then rebuild
  // chains outside any lock. Evictions between stripes can break a chain;
  // those prefixes are simply skipped.
  struct Snap {
    PlanPrefixId parent;
    std::string edge;
    bool has_question;
    std::uint64_t hits;
  };
  std::map<PlanPrefixId, Snap> nodes;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [id, node] : stripe.nodes) {
      nodes.emplace(id, Snap{node.parent, node.edge, node.has_question,
                             node.hits});
    }
  }

  struct Candidate {
    PlanPrefixId id;
    std::uint64_t hits;
    std::size_t depth;
  };
  std::vector<Candidate> candidates;
  for (const auto& [id, snap] : nodes) {
    if (!snap.has_question || snap.hits == 0) {
      continue;
    }
    // Depth = chain length to a root; also validates reconstructability.
    std::size_t depth = 0;
    bool complete = true;
    for (PlanPrefixId at = id; nodes.at(at).parent != kNoPlanPrefix;) {
      const PlanPrefixId parent = nodes.at(at).parent;
      if (nodes.find(parent) == nodes.end()) {
        complete = false;
        break;
      }
      at = parent;
      ++depth;
    }
    if (complete) {
      candidates.push_back({id, snap.hits, depth});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.hits != b.hits) {
                return a.hits > b.hits;
              }
              if (a.depth != b.depth) {
                return a.depth < b.depth;
              }
              return a.id < b.id;
            });
  if (candidates.size() > max_prefixes) {
    candidates.resize(max_prefixes);
  }

  std::vector<HotPrefix> out;
  out.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    HotPrefix prefix;
    prefix.hits = c.hits;
    std::vector<const std::string*> chain;
    PlanPrefixId at = c.id;
    while (nodes.at(at).parent != kNoPlanPrefix) {
      chain.push_back(&nodes.at(at).edge);
      at = nodes.at(at).parent;
    }
    prefix.policy_spec = nodes.at(at).edge;  // the root's edge is the spec
    prefix.step_lines.reserve(chain.size());
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      prefix.step_lines.push_back(**it);
    }
    out.push_back(std::move(prefix));
  }
  return out;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.seeded_inserts = seeded_inserts_.load(std::memory_order_relaxed);
  stats.seeded_hits = seeded_hits_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.entries += stripe.nodes.size();
    stats.bytes += stripe.bytes;
  }
  return stats;
}

}  // namespace aigs
