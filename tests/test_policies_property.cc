// Property-based sweeps: every policy must identify every possible target on
// every hierarchy shape under every distribution family, and the efficient
// greedy instantiations must pick queries achieving the definitional
// middle-point objective (Theorem 5 for GreedyTree; the dominance-pruning
// argument for GreedyDAG).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "core/middle_point.h"
#include "graph/candidate_set.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::MustDist;
using testing::RunAllTargets;

enum class GraphKind { kTree, kDag, kPath, kStar, kBinary, kDiamond };
enum class DistKind { kEqual, kUniform, kExponential, kZipf, kWithZeros,
                      kPointMass };

std::string GraphKindName(GraphKind k) {
  switch (k) {
    case GraphKind::kTree: return "Tree";
    case GraphKind::kDag: return "Dag";
    case GraphKind::kPath: return "Path";
    case GraphKind::kStar: return "Star";
    case GraphKind::kBinary: return "Binary";
    case GraphKind::kDiamond: return "Diamond";
  }
  return "?";
}

std::string DistKindName(DistKind k) {
  switch (k) {
    case DistKind::kEqual: return "Equal";
    case DistKind::kUniform: return "Uniform";
    case DistKind::kExponential: return "Exponential";
    case DistKind::kZipf: return "Zipf";
    case DistKind::kWithZeros: return "WithZeros";
    case DistKind::kPointMass: return "PointMass";
  }
  return "?";
}

Digraph MakeGraph(GraphKind kind, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case GraphKind::kTree:
      return RandomTree(n, rng);
    case GraphKind::kDag:
      return RandomDag(n, rng, 0.4);
    case GraphKind::kPath:
      return PathGraph(n);
    case GraphKind::kStar:
      return StarGraph(n);
    case GraphKind::kBinary:
      return CompleteBinaryTree(n);
    case GraphKind::kDiamond:
      return DiamondChain(std::max<std::size_t>(1, n / 3));
  }
  AIGS_CHECK(false);
  return Digraph();
}

Distribution MakeDist(DistKind kind, std::size_t n, std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  switch (kind) {
    case DistKind::kEqual:
      return EqualDistribution(n);
    case DistKind::kUniform:
      return UniformRandomDistribution(n, rng);
    case DistKind::kExponential:
      return ExponentialRandomDistribution(n, rng);
    case DistKind::kZipf:
      return ZipfRandomDistribution(n, 2.0, rng);
    case DistKind::kWithZeros: {
      std::vector<Weight> w(n);
      bool any = false;
      for (auto& x : w) {
        x = rng.Bernoulli(0.4) ? 0 : rng.UniformInt(50) + 1;
        any |= x > 0;
      }
      if (!any) {
        w[0] = 1;
      }
      return MustDist(std::move(w));
    }
    case DistKind::kPointMass:
      return PointMassDistribution(
          n, static_cast<NodeId>(rng.UniformInt(n)));
  }
  AIGS_CHECK(false);
  return EqualDistribution(1);
}

using SweepParam = std::tuple<GraphKind, std::size_t, DistKind, std::uint64_t>;

class PolicyCorrectnessSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolicyCorrectnessSweep, EveryPolicyIdentifiesEveryTarget) {
  const auto [graph_kind, n, dist_kind, seed] = GetParam();
  const Hierarchy h = MustBuild(MakeGraph(graph_kind, n, seed));
  const Distribution dist = MakeDist(dist_kind, h.NumNodes(), seed);
  const CostModel unit = CostModel::Unit(h.NumNodes());
  Rng cost_rng(seed + 99);
  const CostModel priced =
      CostModel::UniformRandom(h.NumNodes(), 1, 9, cost_rng);

  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(std::make_unique<GreedyNaivePolicy>(h, dist));
  GreedyNaiveOptions rounded_naive;
  rounded_naive.use_rounded_weights = true;
  policies.push_back(std::make_unique<GreedyNaivePolicy>(h, dist, rounded_naive));
  policies.push_back(std::make_unique<GreedyDagPolicy>(h, dist));
  GreedyDagOptions raw_exhaustive;
  raw_exhaustive.use_rounded_weights = false;
  raw_exhaustive.disable_dominance_pruning = true;
  policies.push_back(std::make_unique<GreedyDagPolicy>(h, dist, raw_exhaustive));
  policies.push_back(std::make_unique<TopDownPolicy>(h));
  policies.push_back(std::make_unique<MigsPolicy>(h));
  policies.push_back(std::make_unique<MigsPolicy>(
      h, MigsOptions{.max_choices_per_question = 3}));
  policies.push_back(MakeWigsPolicy(h));
  policies.push_back(
      std::make_unique<CostSensitiveGreedyPolicy>(h, dist, unit));
  policies.push_back(
      std::make_unique<CostSensitiveGreedyPolicy>(h, dist, priced));
  if (h.is_tree()) {
    policies.push_back(std::make_unique<GreedyTreePolicy>(h, dist));
    GreedyTreeOptions heap;
    heap.child_scan = GreedyTreeOptions::ChildScan::kLazyHeap;
    policies.push_back(std::make_unique<GreedyTreePolicy>(h, dist, heap));
    GreedyTreeOptions rounded;
    rounded.use_rounded_weights = true;
    policies.push_back(std::make_unique<GreedyTreePolicy>(h, dist, rounded));
    policies.push_back(std::make_unique<WigsDagPolicy>(h));  // also valid
  }

  for (const auto& policy : policies) {
    SCOPED_TRACE(policy->name());
    // RunAllTargets fatally checks target identification.
    const auto costs = RunAllTargets(*policy, h);
    // Sanity: a search never needs more unit cost than ~n·max_degree.
    for (const auto c : costs) {
      EXPECT_LE(c, 4 * h.NumNodes() * (h.MaxOutDegree() + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyCorrectnessSweep,
    ::testing::Combine(
        ::testing::Values(GraphKind::kTree, GraphKind::kDag, GraphKind::kPath,
                          GraphKind::kStar, GraphKind::kBinary,
                          GraphKind::kDiamond),
        ::testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{9},
                          std::size_t{33}),
        ::testing::Values(DistKind::kEqual, DistKind::kUniform,
                          DistKind::kExponential, DistKind::kZipf,
                          DistKind::kWithZeros, DistKind::kPointMass),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2})),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return GraphKindName(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param)) +
             DistKindName(std::get<2>(info.param)) + "S" +
             std::to_string(std::get<3>(info.param));
    });

// ---- Step-level optimality of the efficient instantiations -----------------

/// Drives a session against an oracle while mirroring the candidate set, and
/// checks every emitted query achieves the definitional minimum of
/// |2·w(G_q ∩ C) − w(C)| over non-root candidates.
void CheckGreedyOptimality(const Policy& policy, const Hierarchy& h,
                           const std::vector<Weight>& weights) {
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    CandidateSet candidates(h.graph());
    NodeId root = h.root();
    Weight total = 0;
    for (const Weight w : weights) {
      total += w;
    }
    BfsScratch scratch(h.NumNodes());
    for (;;) {
      const Query q = session->Next();
      if (q.kind == Query::Kind::kDone) {
        ASSERT_EQ(q.node, target);
        break;
      }
      ASSERT_EQ(q.kind, Query::Kind::kReach);
      ASSERT_TRUE(candidates.IsAlive(q.node));
      ASSERT_NE(q.node, root) << "policy queried the known-yes root";

      const MiddlePoint best = FindMiddlePointNaive(
          h.graph(), candidates, root, weights, total, scratch);
      const Weight reach_q = GetReachableSetWeight(h.graph(), candidates,
                                                   q.node, weights, scratch);
      const Weight twice = 2 * reach_q;
      const Weight diff_q = twice > total ? twice - total : total - twice;
      if (total > 0) {
        ASSERT_EQ(diff_q, best.split_diff)
            << "query " << q.node << " is not a middle point (target "
            << target << ")";
      }

      const bool yes = oracle.Reach(q.node);
      session->OnReach(q.node, yes);
      if (yes) {
        candidates.RestrictToReachable(q.node);
        root = q.node;
        total = reach_q;
      } else {
        candidates.RemoveReachable(q.node);
        total -= reach_q;
      }
    }
  }
}

TEST(GreedyTreeOptimality, Theorem5HeavyPathContainsMiddlePoint) {
  Rng rng(11);
  for (int round = 0; round < 15; ++round) {
    const Hierarchy h = MustBuild(RandomTree(2 + rng.UniformInt(40), rng));
    // Positive weights keep middle points well-defined everywhere.
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(999);
    }
    const Distribution dist = MustDist(w);
    const GreedyTreePolicy policy(h, dist);
    CheckGreedyOptimality(policy, h, dist.weights());
  }
}

TEST(GreedyTreeOptimality, LazyHeapVariantAlsoOptimal) {
  Rng rng(12);
  for (int round = 0; round < 10; ++round) {
    const Hierarchy h = MustBuild(RandomTree(2 + rng.UniformInt(30), rng));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(999);
    }
    const Distribution dist = MustDist(w);
    GreedyTreeOptions options;
    options.child_scan = GreedyTreeOptions::ChildScan::kLazyHeap;
    const GreedyTreePolicy policy(h, dist, options);
    CheckGreedyOptimality(policy, h, dist.weights());
  }
}

TEST(GreedyDagOptimality, PrunedBfsFindsGlobalMiddlePoint) {
  Rng rng(13);
  for (int round = 0; round < 15; ++round) {
    const Hierarchy h =
        MustBuild(RandomDag(2 + rng.UniformInt(35), rng, 0.5));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(999);
    }
    const Distribution dist = MustDist(w);
    // Raw weights so the mirror arithmetic matches exactly.
    GreedyDagOptions options;
    options.use_rounded_weights = false;
    const GreedyDagPolicy policy(h, dist, options);
    CheckGreedyOptimality(policy, h, dist.weights());
  }
}

TEST(GreedyDagOptimality, PruningNeverChangesSelectionQuality) {
  Rng rng(14);
  for (int round = 0; round < 10; ++round) {
    const Hierarchy h =
        MustBuild(RandomDag(2 + rng.UniformInt(30), rng, 0.5));
    const Distribution dist =
        UniformRandomDistribution(h.NumNodes(), rng);
    GreedyDagOptions pruned;
    GreedyDagOptions exhaustive;
    exhaustive.disable_dominance_pruning = true;
    const GreedyDagPolicy a(h, dist, pruned);
    const GreedyDagPolicy b(h, dist, exhaustive);
    // Identical traversal order (BFS) + identical tie-breaking => identical
    // query sequences, hence identical per-target costs.
    EXPECT_EQ(RunAllTargets(a, h), RunAllTargets(b, h));
  }
}

TEST(GreedyNaive, MatchesDefinitionalGreedyEverywhere) {
  Rng rng(15);
  for (int round = 0; round < 10; ++round) {
    const bool dag = rng.Bernoulli(0.5);
    const Hierarchy h = MustBuild(
        dag ? RandomDag(2 + rng.UniformInt(25), rng, 0.4)
            : RandomTree(2 + rng.UniformInt(25), rng));
    std::vector<Weight> w(h.NumNodes());
    for (auto& x : w) {
      x = 1 + rng.UniformInt(99);
    }
    const Distribution dist = MustDist(w);
    const GreedyNaivePolicy policy(h, dist);
    CheckGreedyOptimality(policy, h, dist.weights());
  }
}

// ---- Information-theoretic lower bound --------------------------------------

TEST(LowerBound, ExpectedCostAtLeastEntropy) {
  Rng rng(16);
  for (int round = 0; round < 8; ++round) {
    const Hierarchy h = MustBuild(RandomTree(2 + rng.UniformInt(60), rng));
    const Distribution dist = UniformRandomDistribution(h.NumNodes(), rng);
    const GreedyTreePolicy policy(h, dist);
    const double cost =
        testing::WeightedAverage(RunAllTargets(policy, h), dist);
    // Any deterministic boolean-question strategy needs at least H bits.
    EXPECT_GE(cost + 1e-9, dist.EntropyBits());
  }
}

}  // namespace
}  // namespace aigs
