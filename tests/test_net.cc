// Network front end (src/net): aigs-wire/1 codec robustness (adversarial
// inputs — truncation, oversized lengths, bit flips, garbage, mid-frame
// disconnects), the epoll server + blocking client end to end, the
// consistent-hash ShardRouter's placement properties, the per-op Engine
// traffic counters, and the loadgen driver.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/builtin.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "net/wire.h"
#include "oracle/oracle.h"
#include "prob/distribution.h"
#include "service/engine.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs::net {
namespace {

using aigs::testing::MustBuild;

// ---- fixtures --------------------------------------------------------------

Hierarchy TestHierarchy() {
  Rng rng(11);
  return MustBuild(RandomTree(64, rng));
}

CatalogConfig ConfigFor(const Hierarchy& h,
                        std::vector<std::string> specs = {"greedy"}) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(h);
  config.distribution = EqualDistribution(h.NumNodes());
  config.policy_specs = std::move(specs);
  return config;
}

/// An engine with one published epoch plus its running server.
struct Backend {
  explicit Backend(const Hierarchy& h,
                   std::vector<std::string> specs = {"greedy"},
                   ServerOptions options = {})
      : server(engine, options) {
    EXPECT_TRUE(engine.Publish(ConfigFor(h, std::move(specs))).ok());
    EXPECT_TRUE(server.Start().ok());
  }
  Engine engine;
  AigsServer server;
};

/// Drives the remote session `id` to completion through `call` objects
/// that mirror the client API (AigsClient or ShardRouter).
template <typename Api>
NodeId DriveToDone(Api& api, const Hierarchy& h, SessionId id,
                   NodeId target) {
  ExactOracle oracle(h.reach(), target);
  for (int step = 0; step < 10'000; ++step) {
    auto query = api.Ask(id);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    if (!query.ok()) {
      return kInvalidNode;
    }
    if (query->kind == Query::Kind::kDone) {
      return query->node;
    }
    const Status answered =
        api.Answer(id, AnswerFromOracle(*query, oracle));
    EXPECT_TRUE(answered.ok()) << answered.ToString();
    if (!answered.ok()) {
      return kInvalidNode;
    }
  }
  ADD_FAILURE() << "session never finished";
  return kInvalidNode;
}

// ---- wire codec round trips ------------------------------------------------

TEST(Wire, RequestRoundTripEveryOp) {
  std::vector<WireRequest> requests;
  {
    WireRequest r;
    r.op = WireOp::kOpen;
    r.id = 0xDEADBEEFCAFE1234ull;
    r.text = "batched:k=3";
    requests.push_back(r);
  }
  {
    WireRequest r;
    r.op = WireOp::kAnswer;
    r.id = 42;
    r.answer = SessionAnswer::Reach(true);
    requests.push_back(r);
    r.answer = SessionAnswer::Batch({true, false, false, true});
    requests.push_back(r);
    r.answer = SessionAnswer::Choice(-1);
    requests.push_back(r);
    r.answer = SessionAnswer::Choice(3);
    requests.push_back(r);
  }
  for (const WireOp op : {WireOp::kAsk, WireOp::kSave, WireOp::kClose,
                          WireOp::kStats}) {
    WireRequest r;
    r.op = op;
    r.id = 7;
    requests.push_back(r);
  }
  {
    WireRequest r;
    r.op = WireOp::kResume;
    r.id = 99;
    r.text = std::string("blob with \0 bytes", 17);
    requests.push_back(r);
    r.op = WireOp::kMigrate;
    requests.push_back(r);
    r.text.clear();  // live-migrate form
    requests.push_back(r);
  }

  for (const WireRequest& original : requests) {
    const std::string frame = EncodeRequest(original);
    std::string_view payload;
    std::size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(frame, &payload, &consumed, nullptr),
              FrameStatus::kFrame);
    EXPECT_EQ(consumed, frame.size());
    WireRequest decoded;
    ASSERT_TRUE(DecodeRequestPayload(payload, &decoded).ok());
    EXPECT_EQ(decoded.op, original.op);
    EXPECT_EQ(decoded.id, original.id);
    EXPECT_EQ(decoded.text, original.text);
    if (original.op == WireOp::kAnswer) {
      EXPECT_EQ(decoded.answer.kind, original.answer.kind);
      EXPECT_EQ(decoded.answer.yes, original.answer.yes);
      EXPECT_EQ(decoded.answer.batch, original.answer.batch);
      EXPECT_EQ(decoded.answer.choice, original.answer.choice);
    }
  }
}

TEST(Wire, ResponseRoundTripEveryShape) {
  std::vector<WireResponse> responses;
  {
    WireResponse r;
    r.op = WireOp::kOpen;
    r.id = 0x1122334455667788ull;
    responses.push_back(r);
  }
  {
    WireResponse r;
    r.op = WireOp::kAsk;
    r.query.kind = Query::Kind::kChoice;
    r.query.node = 17;
    r.query.choices = {3, 9, 27};
    responses.push_back(r);
    r.query = Query{};
    r.query.kind = Query::Kind::kDone;
    r.query.node = 5;
    responses.push_back(r);
  }
  {
    WireResponse r;
    r.op = WireOp::kSave;
    r.text = std::string("v2\0binary", 9);
    responses.push_back(r);
  }
  {
    WireResponse r;
    r.op = WireOp::kMigrate;
    r.migrate = {1234, 3, 9, 17, 2};
    responses.push_back(r);
  }
  {
    WireResponse r;
    r.op = WireOp::kStats;
    r.stats.epoch = 4;
    r.stats.live_sessions = 12;
    r.stats.ops.opens = 100;
    r.stats.ops.asks = 900;
    r.stats.ops.answers = 800;
    r.stats.ops.closes = 90;
    r.stats.ops.rejected = 7;
    r.stats.ops.rejected_by_code[static_cast<int>(StatusCode::kNotFound)] =
        7;
    responses.push_back(r);
  }
  responses.push_back(
      ErrorResponse(WireOp::kAnswer,
                    Status::InvalidArgument("kind mismatch: want reach")));

  for (const WireResponse& original : responses) {
    const std::string frame = EncodeResponse(original);
    std::string_view payload;
    std::size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(frame, &payload, &consumed, nullptr),
              FrameStatus::kFrame);
    WireResponse decoded;
    ASSERT_TRUE(DecodeResponsePayload(payload, &decoded).ok());
    EXPECT_EQ(decoded.op, original.op);
    EXPECT_EQ(decoded.code, original.code);
    EXPECT_EQ(decoded.message, original.message);
    if (!original.ok()) {
      const Status rebuilt = decoded.ToStatus();
      EXPECT_EQ(rebuilt.code(), original.code);
      EXPECT_EQ(rebuilt.message(), original.message);
      continue;
    }
    EXPECT_EQ(decoded.id, original.id);
    EXPECT_EQ(decoded.text, original.text);
    EXPECT_EQ(decoded.query.kind, original.query.kind);
    EXPECT_EQ(decoded.query.node, original.query.node);
    EXPECT_EQ(decoded.query.choices, original.query.choices);
    EXPECT_EQ(decoded.migrate.id, original.migrate.id);
    EXPECT_EQ(decoded.migrate.divergent_steps,
              original.migrate.divergent_steps);
    EXPECT_EQ(decoded.stats.epoch, original.stats.epoch);
    EXPECT_EQ(decoded.stats.ops.opens, original.stats.ops.opens);
    EXPECT_EQ(decoded.stats.ops.rejected, original.stats.ops.rejected);
  }
}

TEST(Wire, BackToBackFramesExtractSequentially) {
  WireRequest a;
  a.op = WireOp::kAsk;
  a.id = 1;
  WireRequest b;
  b.op = WireOp::kClose;
  b.id = 2;
  std::string stream = EncodeRequest(a) + EncodeRequest(b);

  std::string_view payload;
  std::size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(stream, &payload, &consumed, nullptr),
            FrameStatus::kFrame);
  WireRequest first;
  ASSERT_TRUE(DecodeRequestPayload(payload, &first).ok());
  EXPECT_EQ(first.op, WireOp::kAsk);
  stream.erase(0, consumed);
  ASSERT_EQ(ExtractFrame(stream, &payload, &consumed, nullptr),
            FrameStatus::kFrame);
  WireRequest second;
  ASSERT_TRUE(DecodeRequestPayload(payload, &second).ok());
  EXPECT_EQ(second.op, WireOp::kClose);
  EXPECT_EQ(consumed, stream.size());
}

// ---- adversarial decode ----------------------------------------------------

TEST(Wire, TruncatedFramesAlwaysNeedMore) {
  WireRequest request;
  request.op = WireOp::kOpen;
  request.id = 7;
  request.text = "greedy";
  const std::string frame = EncodeRequest(request);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::string_view payload;
    std::size_t consumed = 0;
    EXPECT_EQ(ExtractFrame(frame.substr(0, len), &payload, &consumed,
                           nullptr),
              FrameStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(Wire, OversizedLengthPrefixIsCorruptImmediately) {
  // 8 header bytes claiming a 512 MiB payload: the scanner must reject
  // without waiting for (or trying to buffer) the body.
  std::string header;
  const std::uint32_t absurd = 512u << 20;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((absurd >> (8 * i)) & 0xff));
  }
  header.append(4, '\0');  // CRC — irrelevant, length is checked first
  std::string_view payload;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ExtractFrame(header, &payload, &consumed, &error),
            FrameStatus::kCorrupt);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
  // A tighter explicit cap applies the same way.
  EXPECT_EQ(ExtractFrame(header, &payload, &consumed, &error, 1024),
            FrameStatus::kCorrupt);
}

TEST(Wire, EverysingleBitFlipIsRejected) {
  WireRequest request;
  request.op = WireOp::kAnswer;
  request.id = 1;
  request.answer = SessionAnswer::Batch({true, false, true});
  const std::string frame = EncodeRequest(request);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string mutated = frame;
    mutated[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
    std::string_view payload;
    std::size_t consumed = 0;
    // A flipped length field may leave the scanner waiting (kNeedMore) or
    // trip the oversize/CRC checks (kCorrupt); a flip anywhere else is a
    // guaranteed CRC mismatch. What must NEVER happen is a valid frame.
    EXPECT_NE(ExtractFrame(mutated, &payload, &consumed, nullptr),
              FrameStatus::kFrame)
        << "bit " << bit;
  }
}

TEST(Wire, GarbagePayloadsNeverCrashTheDecoder) {
  Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage(rng.UniformInt(64), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(256));
    }
    WireRequest request;
    WireResponse response;
    (void)DecodeRequestPayload(garbage, &request);
    (void)DecodeResponsePayload(garbage, &response);
  }
  // Structured near-misses: right version + opcode, then truncated or
  // trailing bytes.
  WireRequest valid;
  valid.op = WireOp::kResume;
  valid.id = 5;
  valid.text = "0123456789";
  const std::string frame = EncodeRequest(valid);
  const std::string_view payload(frame.data() + kFrameHeaderBytes,
                                 frame.size() - kFrameHeaderBytes);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    WireRequest out;
    EXPECT_FALSE(
        DecodeRequestPayload(payload.substr(0, len), &out).ok())
        << "truncated payload length " << len;
  }
  WireRequest out;
  EXPECT_FALSE(
      DecodeRequestPayload(std::string(payload) + "x", &out).ok());
  // A declared byte-string length far past the buffer must not over-read.
  std::string lying(payload);
  lying[10] = '\xff';  // low byte of the Bytes length field
  lying[11] = '\xff';
  (void)DecodeRequestPayload(lying, &out);
}

// ---- engine satellites: per-op counters and proposed ids -------------------

TEST(EngineOps, CountersTrackTrafficAndRejections) {
  const Hierarchy h = TestHierarchy();
  Engine engine;
  ASSERT_TRUE(engine.Publish(ConfigFor(h)).ok());

  auto id = engine.Open("greedy");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Ask(*id).ok());
  EXPECT_FALSE(engine.Ask(999'999).ok());  // NotFound → rejected
  auto blob = engine.Save(*id);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(engine.Close(*id).ok());

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.ops.opens, 1u);
  EXPECT_EQ(stats.ops.asks, 2u);
  EXPECT_EQ(stats.ops.saves, 1u);
  EXPECT_EQ(stats.ops.closes, 1u);
  EXPECT_EQ(stats.ops.answers, 0u);
  EXPECT_EQ(stats.ops.total(), 5u);
  EXPECT_EQ(stats.ops.rejected, 1u);
  EXPECT_EQ(
      stats.ops.rejected_by_code[static_cast<int>(StatusCode::kNotFound)],
      1u);
}

TEST(EngineOps, ProposedIdsPlaceExactlyOrReject) {
  const Hierarchy h = TestHierarchy();
  Engine engine;
  ASSERT_TRUE(engine.Publish(ConfigFor(h)).ok());

  const SessionId wanted = 0xAB54A98CEB1F0AD2ull;
  auto id = engine.Open("greedy", wanted);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, wanted);
  // The same id again is a collision, not a silent reassignment.
  auto clash = engine.Open("greedy", wanted);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kFailedPrecondition);

  auto blob = engine.Save(wanted);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(engine.Close(wanted).ok());
  auto resumed = engine.Resume(*blob, wanted + 1);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(*resumed, wanted + 1);
}

// ---- server + client end to end --------------------------------------------

TEST(ServerClient, FullSessionLifecycleOverTheWire) {
  const Hierarchy h = TestHierarchy();
  Backend backend(h, {"greedy", "batched:k=3"});

  AigsClient client;
  ASSERT_TRUE(client.Connect(backend.server.endpoint()).ok());

  auto id = client.Open("greedy");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const NodeId target = 29;
  EXPECT_EQ(DriveToDone(client, h, *id, target), target);

  // Save → close → resume round trip, then finish again (idempotent ask).
  auto blob = client.Save(*id);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(client.Close(*id).ok());
  auto resumed = client.Resume(*blob);
  ASSERT_TRUE(resumed.ok());
  auto done = client.Ask(*resumed);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->kind, Query::Kind::kDone);
  EXPECT_EQ(done->node, target);

  // Remote blob migration under a proposed id.
  auto migrated = client.MigrateBlob(*blob, 777);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_EQ(migrated->id, 777u);
  // And a live in-place migration (same epoch → trivially OK).
  auto live = client.Migrate(777);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->from_epoch, live->to_epoch);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epoch, 1u);
  EXPECT_GT(stats->ops.asks, 0u);
  EXPECT_GT(stats->ops.answers, 0u);

  // Service errors arrive as the engine's exact Status, not IOError.
  auto missing = client.Ask(123456789);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto bad_spec = client.Open("no_such_policy");
  EXPECT_FALSE(bad_spec.ok());
  auto open2 = client.Open("batched:k=3");
  ASSERT_TRUE(open2.ok());
  auto pending = client.Ask(*open2);
  ASSERT_TRUE(pending.ok());
  ASSERT_EQ(pending->kind, Query::Kind::kReachBatch);
  const Status wrong_kind = client.Answer(*open2, SessionAnswer::Reach(true));
  EXPECT_EQ(wrong_kind.code(), StatusCode::kInvalidArgument);
  // The connection survives every rejected request.
  EXPECT_TRUE(client.Close(*open2).ok());
}

TEST(ServerClient, PipelinedRequestsAnswerInOrder) {
  const Hierarchy h = TestHierarchy();
  Backend backend(h);

  AigsClient client;
  ASSERT_TRUE(client.Connect(backend.server.endpoint()).ok());
  auto id = client.Open("greedy");
  ASSERT_TRUE(id.ok());
  client.Disconnect();

  // Raw socket: three asks in one write, three responses back.
  auto fd = DialTcp(backend.server.endpoint(), 2000);
  ASSERT_TRUE(fd.ok());
  WireRequest ask;
  ask.op = WireOp::kAsk;
  ask.id = *id;
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    burst += EncodeRequest(ask);
  }
  ASSERT_TRUE(SendAll(*fd, burst).ok());
  std::string received;
  char buffer[4096];
  int frames = 0;
  while (frames < 3) {
    auto n = RecvSome(*fd, buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u) << "server closed before all responses arrived";
    received.append(buffer, *n);
    std::string_view payload;
    std::size_t consumed = 0;
    while (ExtractFrame(received, &payload, &consumed, nullptr) ==
           FrameStatus::kFrame) {
      WireResponse response;
      ASSERT_TRUE(DecodeResponsePayload(payload, &response).ok());
      EXPECT_EQ(response.op, WireOp::kAsk);
      EXPECT_TRUE(response.ok());
      received.erase(0, consumed);
      ++frames;
    }
  }
  CloseFd(*fd);
}

TEST(ServerClient, GarbageBytesCloseTheConnectionNotTheServer) {
  const Hierarchy h = TestHierarchy();
  Backend backend(h);

  // (1) pure garbage — the CRC (or oversize) check condemns the stream.
  {
    auto fd = DialTcp(backend.server.endpoint(), 2000);
    ASSERT_TRUE(fd.ok());
    std::string garbage(256, '\xff');
    ASSERT_TRUE(SendAll(*fd, garbage).ok());
    char buffer[256];
    // The server replies nothing and closes; recv drains to EOF.
    for (;;) {
      auto n = RecvSome(*fd, buffer, sizeof(buffer));
      ASSERT_TRUE(n.ok());
      if (*n == 0) {
        break;
      }
    }
    CloseFd(*fd);
  }
  // (2) valid frame whose payload is garbage — an error RESPONSE, the
  // connection stays up.
  {
    auto fd = DialTcp(backend.server.endpoint(), 2000);
    ASSERT_TRUE(fd.ok());
    std::string frame;
    AppendFrame(&frame, "\x01\xEE garbage-after-a-bad-opcode");
    ASSERT_TRUE(SendAll(*fd, frame).ok());
    std::string received;
    char buffer[4096];
    for (;;) {
      auto n = RecvSome(*fd, buffer, sizeof(buffer));
      ASSERT_TRUE(n.ok());
      ASSERT_GT(*n, 0u);
      received.append(buffer, *n);
      std::string_view payload;
      std::size_t consumed = 0;
      if (ExtractFrame(received, &payload, &consumed, nullptr) ==
          FrameStatus::kFrame) {
        WireResponse response;
        ASSERT_TRUE(DecodeResponsePayload(payload, &response).ok());
        EXPECT_FALSE(response.ok());
        EXPECT_EQ(response.code, StatusCode::kInvalidArgument);
        break;
      }
    }
    CloseFd(*fd);
  }
  // (3) mid-frame disconnect — half a header, then half a payload.
  for (const std::size_t cut : {4u, 12u}) {
    auto fd = DialTcp(backend.server.endpoint(), 2000);
    ASSERT_TRUE(fd.ok());
    WireRequest request;
    request.op = WireOp::kOpen;
    request.text = "greedy";
    const std::string frame = EncodeRequest(request);
    ASSERT_TRUE(SendAll(*fd, frame.substr(0, cut)).ok());
    CloseFd(*fd);  // vanish mid-frame
  }
  // (4) an oversized length prefix is dropped without buffering.
  {
    auto fd = DialTcp(backend.server.endpoint(), 2000);
    ASSERT_TRUE(fd.ok());
    std::string header("\xff\xff\xff\x7f\0\0\0\0", 8);
    ASSERT_TRUE(SendAll(*fd, header).ok());
    char buffer[64];
    for (;;) {
      auto n = RecvSome(*fd, buffer, sizeof(buffer));
      ASSERT_TRUE(n.ok());
      if (*n == 0) {
        break;  // closed, as promised
      }
    }
    CloseFd(*fd);
  }
  // After all of that, the server still serves.
  AigsClient client;
  ASSERT_TRUE(client.Connect(backend.server.endpoint()).ok());
  auto id = client.Open("greedy");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(client.Close(*id).ok());
}

TEST(ServerClient, IdleConnectionsAreReaped) {
  const Hierarchy h = TestHierarchy();
  ServerOptions options;
  options.idle_timeout_ms = 150;
  Backend backend(h, {"greedy"}, options);

  auto fd = DialTcp(backend.server.endpoint(), 2000);
  ASSERT_TRUE(fd.ok());
  // Do nothing. The reaper should close us within a few timeout periods.
  char buffer[16];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "idle connection was never reaped";
    auto n = RecvSome(*fd, buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    if (*n == 0) {
      break;
    }
  }
  CloseFd(*fd);
}

TEST(ServerClient, ConcurrentClientsCompleteTheirSessions) {
  const Hierarchy h = TestHierarchy();
  Backend backend(h);

  constexpr int kThreads = 4;
  constexpr int kSessionsEach = 8;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      AigsClient client;
      ASSERT_TRUE(client.Connect(backend.server.endpoint()).ok());
      Rng rng(100 + t);
      for (int s = 0; s < kSessionsEach; ++s) {
        auto id = client.Open("greedy");
        ASSERT_TRUE(id.ok());
        const NodeId target =
            static_cast<NodeId>(rng.UniformInt(h.NumNodes()));
        if (DriveToDone(client, h, *id, target) == target &&
            client.Close(*id).ok()) {
          completed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(completed.load(), kThreads * kSessionsEach);
  const EngineStats stats = backend.engine.Stats();
  EXPECT_EQ(stats.ops.opens, static_cast<std::uint64_t>(kThreads) *
                                 kSessionsEach);
  EXPECT_EQ(stats.ops.closes, stats.ops.opens);
}

TEST(ServerClient, StopFlushesTheDurableStore) {
  const Hierarchy h = TestHierarchy();
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("aigs_net_durable_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  SessionId id = 0;
  {
    Engine engine;
    ASSERT_TRUE(engine.Publish(ConfigFor(h)).ok());
    DurabilityOptions durability;
    durability.dir = dir;
    durability.sync.policy = FsyncPolicy::kNone;  // flush must cover this
    ASSERT_TRUE(engine.EnableDurability(durability).ok());

    AigsServer server(engine, {});
    ASSERT_TRUE(server.Start().ok());
    AigsClient client;
    ASSERT_TRUE(client.Connect(server.endpoint()).ok());
    auto opened = client.Open("greedy");
    ASSERT_TRUE(opened.ok());
    id = *opened;
    auto query = client.Ask(id);
    ASSERT_TRUE(query.ok());
    ExactOracle oracle(h.reach(), 3);
    ASSERT_TRUE(client.Answer(id, AnswerFromOracle(*query, oracle)).ok());
    server.Stop();  // graceful shutdown: joins workers, flushes the WAL
  }
  // A second engine recovers the session from the flushed store.
  Engine recovered;
  ASSERT_TRUE(recovered.Publish(ConfigFor(h)).ok());
  DurabilityOptions durability;
  durability.dir = dir;
  auto stats = recovered.Recover(durability);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->recovered, 1u);
  EXPECT_TRUE(recovered.Ask(id).ok());
  std::filesystem::remove_all(dir);
}

// ---- consistent-hash ring + router ----------------------------------------

std::vector<Endpoint> FakeEndpoints(std::size_t n) {
  std::vector<Endpoint> endpoints;
  for (std::size_t i = 0; i < n; ++i) {
    endpoints.push_back({"10.0.0." + std::to_string(i + 1), 8400});
  }
  return endpoints;
}

TEST(ShardRing, DeterministicAcrossInstancesAndBalanced) {
  const auto endpoints = FakeEndpoints(3);
  const ShardRing a(endpoints, 64);
  const ShardRing b(endpoints, 64);
  std::vector<std::size_t> hits(3, 0);
  Rng rng(5);
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t id = rng.Next();
    const std::size_t shard = a.ShardFor(id);
    EXPECT_EQ(shard, b.ShardFor(id));  // any replica places identically
    ++hits[shard];
  }
  for (const std::size_t count : hits) {
    EXPECT_GT(count, 30'000u * 15 / 100)
        << "a shard owns under 15% of the keyspace";
  }
}

TEST(ShardRing, RemovingOneEndpointOnlyMovesItsOwnSessions) {
  const auto three = FakeEndpoints(3);
  const std::vector<Endpoint> two = {three[0], three[1]};
  const ShardRing full(three, 64);
  const ShardRing reduced(two, 64);
  Rng rng(6);
  std::size_t moved = 0, kept = 0;
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t id = rng.Next();
    const std::size_t before = full.ShardFor(id);
    const std::size_t after = reduced.ShardFor(id);
    if (before == 2) {
      ++moved;  // orphaned arc — lands wherever
    } else {
      EXPECT_EQ(after, before) << "id not owned by the removed endpoint "
                                  "changed shards";
      ++kept;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_GT(kept, 0u);
}

TEST(ShardRouter, RoutesSessionsAcrossThreeBackendsWithNoCrossTalk) {
  const Hierarchy h = TestHierarchy();
  Backend s0(h), s1(h), s2(h);
  std::vector<Engine*> engines = {&s0.engine, &s1.engine, &s2.engine};
  std::vector<Endpoint> endpoints = {s0.server.endpoint(),
                                     s1.server.endpoint(),
                                     s2.server.endpoint()};
  ShardRouter router(endpoints);

  constexpr int kSessions = 24;
  Rng rng(9);
  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    auto id = router.Open("greedy");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
    // The id alone names the owning shard — verify it really lives there
    // and nowhere else.
    const std::size_t shard = router.ring().ShardFor(*id);
    EXPECT_TRUE(engines[shard]->Ask(*id).ok());
    for (std::size_t other = 0; other < engines.size(); ++other) {
      if (other != shard) {
        EXPECT_FALSE(engines[other]->Ask(*id).ok());
      }
    }
  }
  // Ordinary traffic routes without any session→shard table.
  for (const SessionId id : ids) {
    const NodeId target = static_cast<NodeId>(rng.UniformInt(h.NumNodes()));
    EXPECT_EQ(DriveToDone(router, h, id, target), target);
  }
  // Save on one shard, resume (fresh id, possibly another shard).
  auto blob = router.Save(ids[0]);
  ASSERT_TRUE(blob.ok());
  auto resumed = router.Resume(*blob);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(
      engines[router.ring().ShardFor(*resumed)]->Ask(*resumed).ok());

  // Aggregated stats see the whole fleet's traffic.
  auto stats = router.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ops.opens, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(stats->ops.resumes, 1u);
  std::uint64_t direct_opens = 0;
  for (Engine* engine : engines) {
    const EngineStats es = engine->Stats();
    direct_opens += es.ops.opens;
    EXPECT_GT(es.ops.opens, 0u) << "a shard received no sessions";
  }
  EXPECT_EQ(direct_opens, stats->ops.opens);
}

TEST(ShardRouter, RedrawsOnProposedIdCollision) {
  const Hierarchy h = TestHierarchy();
  Backend backend(h);
  const std::vector<Endpoint> endpoints = {backend.server.endpoint()};

  ShardRouterOptions options;
  options.salt = 42;
  // The router's id stream is deterministic: occupy its FIRST draw
  // directly on the backend, forcing a FailedPrecondition and a redraw.
  SessionId first = Mix64(options.salt ^ 1);
  if (first == 0) {
    first = 1;
  }
  ASSERT_TRUE(backend.engine.Open("greedy", first).ok());

  ShardRouter router(endpoints, options);
  auto id = router.Open("greedy");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_NE(*id, first);
  EXPECT_TRUE(backend.engine.Ask(*id).ok());
}

TEST(ShardRouter, ConcurrentCallersShareOneRouter) {
  // 4 threads drive full sessions through ONE shared router against a
  // 3-shard fleet: every op leases a pooled connection, so callers never
  // serialize on each other's socket I/O and never corrupt each other's
  // framing. All ids must stay distinct, every search must find its
  // target, and the fleet must see exactly the expected op counts.
  const Hierarchy h = TestHierarchy();
  Backend s0(h), s1(h), s2(h);
  ShardRouter router({s0.server.endpoint(), s1.server.endpoint(),
                      s2.server.endpoint()});

  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::vector<SessionId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kSessionsPerThread; ++i) {
        auto id = router.Open("greedy");
        if (!id.ok()) {
          ++failures;
          return;
        }
        ids[t].push_back(*id);
        const NodeId target =
            static_cast<NodeId>(rng.UniformInt(h.NumNodes()));
        if (DriveToDone(router, h, *id, target) != target) {
          ++failures;
          return;
        }
        // Half the sessions also exercise Save + Close concurrently.
        if (i % 2 == 0) {
          if (!router.Save(*id).ok() || !router.Close(*id).ok()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(failures.load(), 0);

  std::set<SessionId> distinct;
  for (const std::vector<SessionId>& per_thread : ids) {
    ASSERT_EQ(per_thread.size(),
              static_cast<std::size_t>(kSessionsPerThread));
    distinct.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(distinct.size(),
            static_cast<std::size_t>(kThreads * kSessionsPerThread));

  auto stats = router.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->ops.opens,
            static_cast<std::uint64_t>(kThreads * kSessionsPerThread));
  EXPECT_EQ(stats->ops.saves,
            static_cast<std::uint64_t>(kThreads * kSessionsPerThread / 2));
  EXPECT_EQ(stats->ops.closes,
            static_cast<std::uint64_t>(kThreads * kSessionsPerThread / 2));

  // DisconnectAll only drops idle pooled connections; traffic after it
  // simply redials.
  router.DisconnectAll();
  auto id = router.Open("greedy");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(DriveToDone(router, h, *id, h.root()), h.root());
}

// ---- loadgen ---------------------------------------------------------------

TEST(Loadgen, ClosedLoopAgainstOneServer) {
  const Hierarchy h = TestHierarchy();
  Backend backend(h);

  LoadgenOptions options;
  options.targets = {backend.server.endpoint()};
  options.connections = 4;
  options.max_requests = 400;
  options.hierarchy = &h;
  auto result = RunLoadgen(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests, 400u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->wrong_targets, 0u);
  EXPECT_GT(result->sessions_completed, 0u);
  EXPECT_GT(result->throughput_rps, 0.0);
  EXPECT_GE(result->p99_us, result->p50_us);
}

TEST(Loadgen, ShardedRunPinsSessionsToEachConnectionsShard) {
  const Hierarchy h = TestHierarchy();
  Backend s0(h), s1(h), s2(h);

  LoadgenOptions options;
  options.targets = {s0.server.endpoint(), s1.server.endpoint(),
                     s2.server.endpoint()};
  options.connections = 6;  // two per shard
  options.max_requests = 600;
  options.hierarchy = &h;
  auto result = RunLoadgen(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->wrong_targets, 0u);
  // Every shard served opens, and none rejected a misrouted id: proposed
  // ids were rejection-sampled onto the right shard.
  for (Engine* engine : {&s0.engine, &s1.engine, &s2.engine}) {
    const EngineStats stats = engine->Stats();
    EXPECT_GT(stats.ops.opens, 0u);
    EXPECT_EQ(stats.ops.rejected, 0u);
  }
}

}  // namespace
}  // namespace aigs::net
