// Search driver (FrameworkIGS, Algorithm 1): relays questions from a session
// to an oracle until the target is identified, accounting costs —
// unit queries, choice-reading cost (MIGS), heterogeneous prices (CAIGS) and
// majority-vote multipliers.
#ifndef AIGS_EVAL_RUNNER_H_
#define AIGS_EVAL_RUNNER_H_

#include <cstdint>

#include "core/policy.h"
#include "oracle/cost_model.h"
#include "oracle/oracle.h"
#include "service/engine.h"
#include "util/status.h"

namespace aigs {

/// Outcome of one driven search.
struct SearchResult {
  /// Target the session identified.
  NodeId target = kInvalidNode;
  /// Number of boolean reach() questions asked.
  std::uint64_t reach_queries = 0;
  /// Number of choice questions asked (MIGS).
  std::uint64_t choice_queries = 0;
  /// Total choices read across choice questions (the paper's MIGS cost).
  std::uint64_t choices_read = 0;
  /// Σ c(q) over reach queries (equals reach_queries under unit prices).
  std::uint64_t priced_cost = 0;
  /// Interaction rounds: one per question or per batch of questions — what
  /// the §III-E batched extension minimizes.
  std::uint64_t interaction_rounds = 0;

  /// The paper's cost metric: reach queries plus choices read.
  std::uint64_t UnitCost() const { return reach_queries + choices_read; }
};

/// Options for RunSearch.
struct RunOptions {
  /// Prices charged per reach query (null = unit prices).
  const CostModel* cost_model = nullptr;
  /// Safety valve: abort (fatally) if a session exceeds this many questions
  /// without terminating — catches non-terminating policies in tests.
  std::uint64_t max_questions = 10'000'000;
  /// Noisy-oracle mode: when a session rejects a round of answers as
  /// mutually inconsistent (possible once answers can be wrong), end the
  /// search with target == kInvalidNode (counted as a misidentification)
  /// instead of treating it as a fatal programmer error.
  bool tolerate_inconsistent_answers = false;
};

/// Answers one pending (non-done) query by consulting `oracle` — the
/// oracle-to-SessionAnswer mapping every engine-driving loop shares
/// (RunSearch below, the bench suites, the service tests).
SessionAnswer AnswerFromOracle(const Query& query, Oracle& oracle);

/// Drives `session` against `oracle` to completion.
SearchResult RunSearch(SearchSession& session, Oracle& oracle,
                       const RunOptions& options = {});

/// Drives an engine-hosted session to completion through the public
/// Ask/Answer API, with identical cost accounting to the in-process
/// overload above. The session stays open (callers Close it, or let the
/// TTL reap it); errors from the service layer propagate as Status.
StatusOr<SearchResult> RunSearch(Engine& engine, SessionId id, Oracle& oracle,
                                 const RunOptions& options = {});

}  // namespace aigs

#endif  // AIGS_EVAL_RUNNER_H_
