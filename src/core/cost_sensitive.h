// Cost-sensitive greedy for CAIGS (§III-D): when question q charges price
// c(q), the policy queries the *cost-sensitive middle point*
//
//   u* = argmax_u  p(G_u ∩ C) · p(C \ G_u) / c(u)      (Definition 9)
//
// which balances an even probability split against a cheap question. With
// unit prices this degenerates to the plain middle point (Definition 4).
// The rounded variant is 2(1+3 ln n)-approximate for CAIGS (Theorem 4).
#ifndef AIGS_CORE_COST_SENSITIVE_H_
#define AIGS_CORE_COST_SENSITIVE_H_

#include <memory>
#include <string>

#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "core/split_weight_index.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"
#include "prob/rounding.h"

namespace aigs {

/// Tuning knobs for the cost-sensitive greedy.
struct CostSensitiveOptions {
  /// Apply Eq. (1) rounding (Theorem 4's configuration).
  bool use_rounded_weights = true;
  RoundingOptions rounding;
};

/// Cost-sensitive greedy policy (any hierarchy). Selection scans all alive
/// candidates per round on the shared SplitWeightIndex — O(alive · log n)
/// per pick on trees, O(alive · n/64) on DAGs; the heavy-path shortcut of
/// Theorem 5 does not carry over to heterogeneous prices, and dominance
/// pruning is unsound once prices skew the objective.
class CostSensitiveGreedyPolicy : public Policy {
 public:
  CostSensitiveGreedyPolicy(const Hierarchy& hierarchy,
                            const Distribution& dist, const CostModel& costs,
                            CostSensitiveOptions options = {});

  std::string name() const override { return "CostSensitiveGreedy"; }
  std::unique_ptr<SearchSession> NewSession() const override;

 private:
  const Hierarchy* hierarchy_;
  std::vector<Weight> weights_;
  const CostModel* costs_;
  // Shared immutable selection base; sessions are O(1) overlays over it.
  std::unique_ptr<SplitWeightBase> base_;
};

}  // namespace aigs

#endif  // AIGS_CORE_COST_SENSITIVE_H_
