// Interactive demo: YOU are the crowd. Think of one node in the vehicle
// hierarchy (or pass a hierarchy file as argv[1]) and answer the greedy
// policy's reachability questions with y/n; it identifies your node in a
// handful of questions.
//
// Usage:  interactive_demo [hierarchy.txt]
// Answers: y / n / q (quit). Non-interactive stdin ends the demo gracefully.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/aigs.h"
#include "data/builtin.h"
#include "graph/graph_io.h"

using namespace aigs;  // NOLINT — example brevity

namespace {

const char* NodeName(const Hierarchy& h, NodeId v, std::string& storage) {
  if (!h.graph().Label(v).empty()) {
    return h.graph().Label(v).c_str();
  }
  storage = "node #" + std::to_string(v);
  return storage.c_str();
}

int ReadAnswer() {
  char buffer[64];
  if (std::fgets(buffer, sizeof(buffer), stdin) == nullptr) {
    return -1;  // EOF — e.g. piped input exhausted
  }
  switch (buffer[0]) {
    case 'y':
    case 'Y':
      return 1;
    case 'n':
    case 'N':
      return 0;
    default:
      return -1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  StatusOr<Digraph> graph =
      argc > 1 ? LoadHierarchy(argv[1])
               : StatusOr<Digraph>(BuildVehicleHierarchy());
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto hierarchy = Hierarchy::Build(*std::move(graph));
  if (!hierarchy.ok()) {
    std::fprintf(stderr, "%s\n", hierarchy.status().ToString().c_str());
    return 1;
  }
  const Hierarchy& h = *hierarchy;

  std::printf("Think of one of the %zu categories. I will ask yes/no "
              "questions.\n",
              h.NumNodes());
  std::string storage;
  if (argc <= 1) {
    std::printf("(categories: Vehicle, Car, Nissan, Honda, Mercedes, "
                "Maxima, Sentra)\n");
  }

  // Without better knowledge, assume all categories equally likely.
  const Distribution dist = EqualDistribution(h.NumNodes());
  const auto policy = MakeGreedyPolicy(h, dist);
  auto session = policy->NewSession();
  int questions = 0;
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      std::printf("=> you were thinking of: %s (%d questions)\n",
                  NodeName(h, q.node, storage), questions);
      return 0;
    }
    std::printf("Q%d: is your category '%s' or below it? [y/n] ",
                ++questions, NodeName(h, q.node, storage));
    std::fflush(stdout);
    const int answer = ReadAnswer();
    if (answer < 0) {
      std::printf("\n(no answer — bye)\n");
      return 0;
    }
    session->OnReach(q.node, answer == 1);
  }
}
