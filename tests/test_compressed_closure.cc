// CompressedClosure codec and set-operation tests: per-chunk-kind round
// trips through the dense-row test seam, randomized fuzz against dense
// reference bitsets, and graph-built rows checked against brute-force BFS.
#include "graph/compressed_closure.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/reachability.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace aigs {
namespace {

/// Expands a compressed row back to a dense bitset via ForEachPosInRow.
DynamicBitset Decode(const CompressedClosure& cc, NodeId u) {
  DynamicBitset out(cc.num_nodes());
  std::size_t prev = 0;
  bool first = true;
  cc.ForEachPosInRow(u, [&](std::size_t p) {
    if (!first) {
      EXPECT_GT(p, prev) << "ForEachPosInRow not strictly ascending";
    }
    first = false;
    prev = p;
    out.Set(p);
  });
  return out;
}

void ExpectRowsEqual(const CompressedClosure& cc,
                     const std::vector<DynamicBitset>& rows) {
  const std::size_t n = rows.size();
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(cc.RowCount(u), rows[u].Count()) << "row " << u;
    const DynamicBitset decoded = Decode(cc, u);
    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_EQ(decoded.Test(p), rows[u].Test(p))
          << "row " << u << " pos " << p;
      ASSERT_EQ(cc.TestPos(u, p), rows[u].Test(p))
          << "row " << u << " pos " << p;
    }
  }
}

TEST(CompressedClosureCodec, IntervalRowRoundTrip) {
  const std::size_t n = 10'000;
  std::vector<DynamicBitset> rows;
  // Contiguous ranges of every flavor: empty, single bit, word-aligned,
  // straddling chunk boundaries, and the full universe.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, 0}, {17, 18}, {64, 128}, {4090, 4200}, {0, n}, {8191, 8193}};
  for (const auto& [lo, hi] : ranges) {
    DynamicBitset row(n);
    for (std::size_t p = lo; p < hi; ++p) {
      row.Set(p);
    }
    rows.push_back(std::move(row));
  }
  const CompressedClosure cc(rows);
  ExpectRowsEqual(cc, rows);
  // Every contiguous (and the empty) row must land in the 12-byte interval
  // representation — no chunk payload at all.
  EXPECT_EQ(cc.stats().interval_rows + cc.stats().chunked_rows, rows.size());
  EXPECT_EQ(cc.stats().dense_chunks + cc.stats().delta_chunks +
                cc.stats().run_chunks,
            0u);
}

TEST(CompressedClosureCodec, DeltaChunkRoundTrip) {
  const std::size_t n = 9'000;
  // Sparse scattered bits: the per-chunk cost rule must pick the sorted-u16
  // delta encoding.
  Rng rng(71);
  std::vector<DynamicBitset> rows;
  for (int r = 0; r < 4; ++r) {
    DynamicBitset row(n);
    for (int i = 0; i < 40; ++i) {
      row.Set(rng.UniformInt(n));
    }
    rows.push_back(std::move(row));
  }
  const CompressedClosure cc(rows);
  ExpectRowsEqual(cc, rows);
  EXPECT_GT(cc.stats().delta_chunks, 0u);
  EXPECT_EQ(cc.stats().dense_chunks, 0u);
}

TEST(CompressedClosureCodec, RunChunkRoundTrip) {
  const std::size_t n = 9'000;
  // A few long runs per chunk: run-length (start,len) pairs win the cost
  // rule. Runs deliberately cross word boundaries.
  std::vector<DynamicBitset> rows;
  DynamicBitset row(n);
  const std::pair<std::size_t, std::size_t> run_ranges[] = {
      {10, 700}, {1000, 1900}, {4000, 4090}, {5000, 8999}};
  for (const auto& [lo, hi] : run_ranges) {
    for (std::size_t p = lo; p < hi; ++p) {
      row.Set(p);
    }
  }
  rows.push_back(std::move(row));
  const CompressedClosure cc(rows);
  ExpectRowsEqual(cc, rows);
  EXPECT_GT(cc.stats().run_chunks, 0u);
  EXPECT_EQ(cc.stats().dense_chunks, 0u);
}

TEST(CompressedClosureCodec, DenseChunkRoundTrip) {
  const std::size_t n = 8'192;
  // ~50% random density with no long runs: raw words are the cheapest.
  Rng rng(72);
  std::vector<DynamicBitset> rows;
  DynamicBitset row(n);
  for (std::size_t p = 0; p < n; ++p) {
    if (rng.UniformInt(2) == 0) {
      row.Set(p);
    }
  }
  rows.push_back(std::move(row));
  const CompressedClosure cc(rows);
  ExpectRowsEqual(cc, rows);
  EXPECT_GT(cc.stats().dense_chunks, 0u);
}

TEST(CompressedClosureCodec, FuzzMixedDensityRows) {
  // Randomized rows spanning every density regime, so single rows mix
  // dense, delta, and run chunks; every set operation is cross-checked
  // against the dense reference.
  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 3'000 + rng.UniformInt(9'000);
    std::vector<DynamicBitset> rows;
    for (int r = 0; r < 8; ++r) {
      DynamicBitset row(n);
      // Scattered singles.
      const std::size_t singles = rng.UniformInt(200);
      for (std::size_t i = 0; i < singles; ++i) {
        row.Set(rng.UniformInt(n));
      }
      // A few runs.
      const std::size_t runs = rng.UniformInt(6);
      for (std::size_t i = 0; i < runs; ++i) {
        const std::size_t lo = rng.UniformInt(n);
        const std::size_t len = 1 + rng.UniformInt(n / 4);
        for (std::size_t p = lo; p < std::min(n, lo + len); ++p) {
          row.Set(p);
        }
      }
      rows.push_back(std::move(row));
    }
    const CompressedClosure cc(rows);
    ExpectRowsEqual(cc, rows);

    // Weights + a random alive mask for the fused kernels.
    std::vector<Weight> weights(n);
    for (std::size_t p = 0; p < n; ++p) {
      weights[p] = 1 + rng.UniformInt(100);
    }
    const BlockedWeights blocked(weights);
    std::vector<Weight> prefix(n + 1, 0);
    for (std::size_t p = 0; p < n; ++p) {
      prefix[p + 1] = prefix[p] + weights[p];
    }
    DynamicBitset alive(n);
    for (std::size_t p = 0; p < n; ++p) {
      if (rng.UniformInt(3) != 0) {
        alive.Set(p);
      }
    }

    for (NodeId u = 0; u < rows.size(); ++u) {
      std::size_t want_count = 0;
      Weight want_weight = 0;
      Weight want_row_weight = 0;
      for (std::size_t p = 0; p < n; ++p) {
        if (rows[u].Test(p)) {
          want_row_weight += weights[p];
          if (alive.Test(p)) {
            ++want_count;
            want_weight += weights[p];
          }
        }
      }
      const auto cw = cc.IntersectCountAndWeight(u, alive, blocked);
      EXPECT_EQ(cw.count, want_count) << "row " << u;
      EXPECT_EQ(cw.weight, want_weight) << "row " << u;
      EXPECT_EQ(cc.IntersectCount(u, alive), want_count) << "row " << u;
      EXPECT_EQ(cc.RowWeightFromPrefix(u, prefix), want_row_weight)
          << "row " << u;

      DynamicBitset kept = alive;
      cc.IntersectInto(u, kept);
      DynamicBitset removed = alive;
      cc.SubtractFrom(u, removed);
      DynamicBitset expanded(n);
      cc.ExpandRowInto(u, expanded);
      for (std::size_t p = 0; p < n; ++p) {
        ASSERT_EQ(kept.Test(p), alive.Test(p) && rows[u].Test(p))
            << "IntersectInto row " << u << " pos " << p;
        ASSERT_EQ(removed.Test(p), alive.Test(p) && !rows[u].Test(p))
            << "SubtractFrom row " << u << " pos " << p;
        ASSERT_EQ(expanded.Test(p), rows[u].Test(p))
            << "ExpandRowInto row " << u << " pos " << p;
      }
    }
  }
}

TEST(CompressedClosureGraph, TreeRowsAreAllIntervals) {
  Rng rng(5);
  const Digraph g = RandomTree(300, rng);
  const CompressedClosure cc(g);
  // A pure tree: every node's reachable set is exactly its DFS subtree,
  // so every row must take the zero-payload interval fast path.
  EXPECT_EQ(cc.stats().interval_rows, g.NumNodes());
  EXPECT_EQ(cc.stats().chunked_rows, 0u);
}

TEST(CompressedClosureGraph, MatchesBruteForceOnDags) {
  Rng rng(6);
  for (int round = 0; round < 4; ++round) {
    const Digraph g = RandomDag(120, rng, 0.2 + 0.2 * round);
    const CompressedClosure cc(g);

    // pos/node_at_pos must be a permutation and inverses of each other.
    std::vector<bool> seen(g.NumNodes(), false);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const std::size_t p = cc.pos(v);
      ASSERT_LT(p, g.NumNodes());
      ASSERT_FALSE(seen[p]);
      seen[p] = true;
      ASSERT_EQ(cc.node_at_pos(p), v);
    }

    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      const std::vector<NodeId> reachable = CollectReachable(g, u);
      EXPECT_EQ(cc.RowCount(u), reachable.size()) << "round " << round;
      DynamicBitset brute(g.NumNodes());
      for (const NodeId v : reachable) {
        brute.Set(cc.pos(v));
      }
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        ASSERT_EQ(cc.Reaches(u, v), brute.Test(cc.pos(v)))
            << "round " << round << " " << u << " -> " << v;
      }
    }

    // The root reaches every node: its row must re-detect as the full
    // [0, n) interval even though the root is not tree-pure.
    EXPECT_EQ(cc.RowCount(g.root()), g.NumNodes());
    EXPECT_GT(cc.stats().interval_rows, 0u);
  }
}

TEST(CompressedClosureGraph, MemoryStaysFarBelowDense) {
  Rng rng(7);
  const Digraph g = RandomDag(2'000, rng, 0.05);
  const CompressedClosure cc(g);
  const std::size_t dense_bytes =
      static_cast<std::size_t>(ReachabilityIndex::DenseClosureBytes(
          g.NumNodes()));
  EXPECT_LT(cc.MemoryBytes(), dense_bytes);
  EXPECT_GT(cc.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace aigs
