#include "core/greedy_naive.h"

#include "core/middle_point.h"
#include "graph/candidate_set.h"

namespace aigs {
namespace {

class GreedyNaiveSession final : public SearchSession {
 public:
  GreedyNaiveSession(const Hierarchy& h, const std::vector<Weight>& weights)
      : graph_(&h.graph()),
        weights_(&weights),
        candidates_(h.graph()),
        root_(h.root()) {
    total_weight_ = 0;
    for (const Weight w : weights) {
      total_weight_ += w;
    }
  }

  Query Next() override {
    if (candidates_.alive_count() == 1) {
      return Query::Done(candidates_.SoleCandidate());
    }
    if (pending_ == kInvalidNode) {
      const MiddlePoint mp = FindMiddlePointNaive(
          *graph_, candidates_, root_, *weights_, total_weight_);
      AIGS_CHECK(mp.node != kInvalidNode);
      pending_ = mp.node;
      pending_reach_weight_ = mp.reach_weight;
    }
    return Query::ReachQuery(pending_);
  }

  void OnReach(NodeId q, bool yes) override {
    AIGS_CHECK(q == pending_);
    pending_ = kInvalidNode;
    if (yes) {
      candidates_.RestrictToReachable(q);
      root_ = q;
      total_weight_ = pending_reach_weight_;
    } else {
      candidates_.RemoveReachable(q);
      total_weight_ -= pending_reach_weight_;
    }
  }

 private:
  const Digraph* graph_;
  const std::vector<Weight>* weights_;
  CandidateSet candidates_;
  NodeId root_;
  Weight total_weight_ = 0;
  NodeId pending_ = kInvalidNode;
  Weight pending_reach_weight_ = 0;
};

}  // namespace

GreedyNaivePolicy::GreedyNaivePolicy(const Hierarchy& hierarchy,
                                     const Distribution& dist,
                                     GreedyNaiveOptions options)
    : hierarchy_(&hierarchy),
      weights_(options.use_rounded_weights ? RoundWeights(dist, options.rounding)
                                           : dist.weights()) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
}

std::unique_ptr<SearchSession> GreedyNaivePolicy::NewSession() const {
  return std::make_unique<GreedyNaiveSession>(*hierarchy_, weights_);
}

}  // namespace aigs
