#include "data/datasets.h"

#include <algorithm>

#include "util/string_util.h"

namespace aigs {
namespace {

CatalogParams ScaleParams(CatalogParams params, double scale) {
  AIGS_CHECK(scale > 0 && scale <= 1.0);
  if (scale < 1.0) {
    params.num_nodes = std::max<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(params.num_nodes) *
                                 scale),
        params.max_out_degree + static_cast<std::size_t>(params.height) + 2);
    const auto scaled_deg = static_cast<std::size_t>(
        static_cast<double>(params.max_out_degree) * scale);
    params.max_out_degree = std::max<std::size_t>(scaled_deg, 8);
    params.num_nodes =
        std::max(params.num_nodes, params.max_out_degree +
                                        static_cast<std::size_t>(params.height) +
                                        2);
  }
  return params;
}

std::uint64_t ScaleObjects(std::uint64_t objects, double scale,
                           std::size_t num_nodes) {
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(objects) * scale * scale);
  return std::max<std::uint64_t>(scaled, num_nodes);
}

}  // namespace

Dataset MakeAmazonDataset(double scale, const ReachabilityOptions& reach) {
  const CatalogParams params = ScaleParams(AmazonParams(), scale);
  const std::uint64_t objects =
      ScaleObjects(kAmazonNumObjects, scale, params.num_nodes);
  auto h = Hierarchy::Build(GenerateCatalogTree(params), reach);
  AIGS_CHECK(h.ok());
  Dataset d{.name = "Amazon",
            .hierarchy = *std::move(h),
            .real_distribution = AssignZipfObjectCounts(
                params.num_nodes, objects, /*s=*/1.0, params.seed + 17),
            .num_objects = objects};
  return d;
}

Dataset MakeImageNetDataset(double scale, const ReachabilityOptions& reach) {
  const CatalogParams params = ScaleParams(ImageNetParams(), scale);
  const std::uint64_t objects =
      ScaleObjects(kImageNetNumObjects, scale, params.num_nodes);
  auto h = Hierarchy::Build(GenerateCatalogDag(params), reach);
  AIGS_CHECK(h.ok());
  Dataset d{.name = "ImageNet",
            .hierarchy = *std::move(h),
            .real_distribution = AssignZipfObjectCounts(
                params.num_nodes, objects, /*s=*/1.0, params.seed + 17),
            .num_objects = objects};
  return d;
}

std::string DescribeDataset(const Dataset& dataset) {
  const Hierarchy& h = dataset.hierarchy;
  std::string out = dataset.name;
  out += ": #nodes=" + FormatWithCommas(h.NumNodes());
  out += " height=" + std::to_string(h.Height());
  out += " max_deg=" + std::to_string(h.MaxOutDegree());
  out += std::string(" type=") + (h.is_tree() ? "Tree" : "DAG");
  out += " #objects=" + FormatWithCommas(dataset.num_objects);
  return out;
}

}  // namespace aigs
