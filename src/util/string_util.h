// Small string helpers used by the text IO paths and bench formatting.
#ifndef AIGS_UTIL_STRING_UTIL_H_
#define AIGS_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aigs {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Parses a base-10 signed integer; rejects trailing garbage.
StatusOr<std::int64_t> ParseInt64(std::string_view s);

/// Parses a base-10 unsigned integer; rejects trailing garbage.
StatusOr<std::uint64_t> ParseUint64(std::string_view s);

/// Parses a floating-point number; rejects trailing garbage.
StatusOr<double> ParseDouble(std::string_view s);

/// Formats a double with `digits` decimal places ("12.34").
std::string FormatDouble(double value, int digits = 2);

/// Formats an integer with thousands separators ("12,656,970").
std::string FormatWithCommas(std::uint64_t value);

}  // namespace aigs

#endif  // AIGS_UTIL_STRING_UTIL_H_
