// Explicit decision-tree materialization of a policy (Definition 6) and its
// cost functional (Definition 7 / Definition 8). Deterministic policies are
// decision trees; building the tree explicitly lets tests cross-validate the
// evaluator, reproduces the paper's worked examples (Examples 2–4) and
// supports DOT visualization.
//
// Construction replays the policy from scratch down every answer path, so it
// is intended for small hierarchies (bounded by `max_nodes`).
#ifndef AIGS_EVAL_DECISION_TREE_H_
#define AIGS_EVAL_DECISION_TREE_H_

#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/policy.h"
#include "oracle/cost_model.h"
#include "prob/distribution.h"
#include "util/status.h"

namespace aigs {

/// Materialized binary decision tree of a reach-query policy.
class DecisionTree {
 public:
  /// One node: internal (query) or leaf (identified target).
  struct Node {
    bool is_leaf = false;
    /// Query node (internal) or target (leaf).
    NodeId hierarchy_node = kInvalidNode;
    /// Child indexes into nodes(); -1 when absent (leaves).
    int yes_child = -1;
    int no_child = -1;
    /// Depth in reach-queries from the decision-tree root.
    std::uint32_t depth = 0;
  };

  /// Builds the decision tree by exhaustively replaying `policy`. Fails if
  /// the policy asks choice questions or the tree exceeds `max_nodes`
  /// decision nodes.
  static StatusOr<DecisionTree> Build(const Policy& policy,
                                      const Hierarchy& hierarchy,
                                      std::size_t max_nodes = 1 << 16);

  const std::vector<Node>& nodes() const { return nodes_; }
  /// Index of the root node in nodes().
  int root_index() const { return 0; }
  std::size_t NumLeaves() const { return num_leaves_; }

  /// Expected cost Σ p(v)·ℓ(v) (Definition 7) — ℓ counts queries on the
  /// root→leaf path.
  double ExpectedCost(const Distribution& dist) const;

  /// Expected priced cost Σ p(v)·ℓ̂(v) (Definition 8) — ℓ̂ sums c(q) over
  /// query nodes on the root→leaf path.
  double ExpectedPricedCost(const Distribution& dist,
                            const CostModel& costs) const;

  /// Depth of the leaf identifying `target` (number of queries asked).
  std::uint32_t LeafDepth(NodeId target) const;

  /// Graphviz rendering; `labeler` maps hierarchy nodes to display names.
  std::string ToDot(const Hierarchy& hierarchy) const;

 private:
  std::vector<Node> nodes_;
  std::vector<int> leaf_of_target_;  // node index per hierarchy target
  std::size_t num_leaves_ = 0;
};

}  // namespace aigs

#endif  // AIGS_EVAL_DECISION_TREE_H_
