// ShardRouter — consistent-hash placement of sessions across N backend
// aigs servers, with no cross-shard chatter: a session's id alone
// determines which shard owns it.
//
// The trick that makes this work with server-side session storage is that
// the ROUTER proposes the session id. Open/Resume/Migrate-blob generate a
// fresh 64-bit id, look it up on the hash ring, and send it to the owning
// shard via the wire protocol's proposed-id field (Engine::Open's
// InsertWithId seam). From then on every id-addressed op — Ask, Answer,
// Save, Close, live Migrate — routes by hashing the id; no lookup table,
// no broadcast, and any router replica configured with the same endpoint
// list computes the identical placement.
//
// The ring hashes each endpoint onto `vnodes` points (HashBytes64 of the
// endpoint string mixed with the virtual-node index), so load spreads
// evenly and removing one endpoint only reassigns that endpoint's
// arc — the classic consistent-hashing stability property, asserted by
// tests/test_net.cc.
//
// Not thread-safe (a router owns one blocking connection per shard);
// give each thread its own router.
#ifndef AIGS_NET_SHARD_ROUTER_H_
#define AIGS_NET_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/wire.h"
#include "util/status.h"

namespace aigs::net {

/// The pure placement function: endpoints → hash ring → shard index.
/// Deterministic across processes; shared by the router and the load
/// generator (which needs to pre-compute which shard an id lands on).
class ShardRing {
 public:
  /// `vnodes` points per endpoint (>= 1).
  ShardRing(const std::vector<Endpoint>& endpoints, std::size_t vnodes = 64);

  std::size_t num_shards() const { return num_shards_; }

  /// The shard owning `id`: first ring point clockwise of Mix64(id).
  std::size_t ShardFor(std::uint64_t id) const;

 private:
  std::size_t num_shards_;
  /// (ring position, shard index), sorted by position.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

struct ShardRouterOptions {
  std::size_t vnodes = 64;
  /// Seed for the router's id generator — distinct routers proposing into
  /// the same fleet should use distinct salts so their id streams never
  /// collide by construction (collisions are still handled: the shard
  /// answers FailedPrecondition and the router redraws).
  std::uint64_t salt = 0;
  /// Redraw attempts when a proposed id is already live on its shard.
  std::size_t max_id_attempts = 8;
  ClientOptions client;
};

class ShardRouter {
 public:
  ShardRouter(std::vector<Endpoint> endpoints, ShardRouterOptions options = {});

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  const ShardRing& ring() const { return ring_; }

  /// Drops any open connections; the next op per shard redials.
  void DisconnectAll();

  // ---- the Engine session API, routed ---------------------------------------

  StatusOr<SessionId> Open(const std::string& policy_spec);
  StatusOr<Query> Ask(SessionId id);
  Status Answer(SessionId id, const SessionAnswer& answer);
  StatusOr<std::string> Save(SessionId id);
  StatusOr<SessionId> Resume(const std::string& blob);
  StatusOr<MigrateResult> Migrate(SessionId id);
  StatusOr<MigrateResult> MigrateBlob(const std::string& blob);
  Status Close(SessionId id);
  /// Aggregated stats across all shards (epoch = max over shards).
  StatusOr<WireStats> Stats();

 private:
  /// The connected client for `shard`, dialing lazily.
  StatusOr<AigsClient*> ClientFor(std::size_t shard);

  /// Draws a fresh nonzero id and runs `place(client, id)` on its owning
  /// shard, redrawing on FailedPrecondition (id collision) up to the
  /// attempt budget.
  template <typename Place>
  auto PlaceWithFreshId(Place place) -> decltype(place(
      static_cast<AigsClient*>(nullptr), SessionId{0}));

  std::vector<Endpoint> endpoints_;
  ShardRouterOptions options_;
  ShardRing ring_;
  std::vector<AigsClient> clients_;  // one per shard, lazily connected
  std::uint64_t id_counter_ = 0;
};

}  // namespace aigs::net

#endif  // AIGS_NET_SHARD_ROUTER_H_
