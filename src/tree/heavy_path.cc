#include "tree/heavy_path.h"

#include "tree/subtree_weights.h"

namespace aigs {

HeavyPathDecomposition HeavyPathDecomposition::BySize(const Tree& tree) {
  const auto sizes = ComputeSubtreeSizes(tree);
  return Build(tree, std::vector<Weight>(sizes.begin(), sizes.end()));
}

HeavyPathDecomposition HeavyPathDecomposition::ByWeight(
    const Tree& tree, const std::vector<Weight>& weights) {
  return Build(tree, ComputeSubtreeWeights(tree, weights));
}

HeavyPathDecomposition HeavyPathDecomposition::Build(
    const Tree& tree, const std::vector<Weight>& subtree) {
  const std::size_t n = tree.NumNodes();
  HeavyPathDecomposition d;
  d.heavy_child_.assign(n, kInvalidNode);
  d.head_.assign(n, kInvalidNode);

  for (NodeId v = 0; v < n; ++v) {
    Weight best = 0;
    NodeId heavy = kInvalidNode;
    for (const NodeId c : tree.Children(v)) {
      if (heavy == kInvalidNode || subtree[c] > best) {
        heavy = c;
        best = subtree[c];
      }
    }
    d.heavy_child_[v] = heavy;
  }

  // Heads in preorder: a node starts a new path iff it is the root or a
  // light child of its parent.
  d.num_paths_ = 0;
  for (const NodeId v : tree.Preorder()) {
    const NodeId p = tree.Parent(v);
    if (p == kInvalidNode || d.heavy_child_[p] != v) {
      d.head_[v] = v;
      ++d.num_paths_;
    } else {
      d.head_[v] = d.head_[p];
    }
  }
  return d;
}

std::vector<NodeId> HeavyPathDecomposition::PathFrom(NodeId from) const {
  std::vector<NodeId> path;
  for (NodeId v = from; v != kInvalidNode; v = heavy_child_[v]) {
    path.push_back(v);
  }
  return path;
}

}  // namespace aigs
