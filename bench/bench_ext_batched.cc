// §III-E extension: batched questions. Crowd platforms answer a batch of k
// questions in one round trip; batching trades extra questions (money) for
// fewer rounds (latency). This bench quantifies the trade-off on the
// Amazon-like catalog under the real distribution.
#include "bench/bench_common.h"
#include "core/batched_greedy.h"
#include "eval/runner.h"
#include "oracle/oracle.h"
#include "util/ascii_table.h"

namespace aigs::bench {
namespace {

struct BatchStats {
  double questions = 0;
  double rounds = 0;
};

BatchStats Evaluate(const Policy& policy, const Hierarchy& h,
                    const Distribution& dist) {
  long double questions = 0;
  long double rounds = 0;
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle);
    AIGS_CHECK(r.target == target);
    questions += static_cast<long double>(dist.WeightOf(target)) *
                 static_cast<long double>(r.reach_queries);
    rounds += static_cast<long double>(dist.WeightOf(target)) *
              static_cast<long double>(r.interaction_rounds);
  }
  const auto total = static_cast<long double>(dist.Total());
  return {static_cast<double>(questions / total),
          static_cast<double>(rounds / total)};
}

int Main() {
  PrintBanner("Extension: batched questions (§III-E)");
  // Batched selection rescans candidates per pick; keep the scale modest.
  const double scale = std::min(DatasetScale(), 0.05);
  const Dataset dataset = MakeAmazonDataset(scale);
  const Hierarchy& h = dataset.hierarchy;
  const Distribution& dist = dataset.real_distribution;
  std::printf("dataset: %s\n\n", DescribeDataset(dataset).c_str());

  AsciiTable table({"k (questions/round)", "E[questions]", "E[rounds]",
                    "latency saving", "question overhead"});
  BatchStats base;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    BatchedGreedyPolicy policy(h, dist,
                               BatchedGreedyOptions{.questions_per_round = k});
    const BatchStats stats = Evaluate(policy, h, dist);
    if (k == 1) {
      base = stats;
    }
    table.AddRow({std::to_string(k), FormatDouble(stats.questions),
                  FormatDouble(stats.rounds),
                  FormatDouble((1 - stats.rounds / base.rounds) * 100, 1) +
                      "%",
                  FormatDouble((stats.questions / base.questions - 1) * 100,
                               1) +
                      "%"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape: latency (rounds) keeps improving with k but saturates "
              "— later questions in a batch\ncannot adapt to earlier answers "
              "— while the question bill grows super-linearly.\n(The paper "
              "leaves bounded guarantees for batched DAG search as an open "
              "problem.)\n");
  return 0;
}

}  // namespace
}  // namespace aigs::bench

int main() { return aigs::bench::Main(); }
