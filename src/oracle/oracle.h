// The oracle abstraction: whatever answers reachability questions about the
// hidden target — in the paper, a human crowd; here, simulated from ground
// truth. Policies never see the target; they only observe answers.
#ifndef AIGS_ORACLE_ORACLE_H_
#define AIGS_ORACLE_ORACLE_H_

#include <span>

#include "graph/reachability.h"
#include "util/common.h"

namespace aigs {

/// Answers questions about one hidden target node.
class Oracle {
 public:
  virtual ~Oracle() = default;

  /// reach(q): is the target reachable from q (q itself included)?
  virtual bool Reach(NodeId q) = 0;

  /// Multiple-choice question (MIGS): given candidate categories, returns
  /// the index of a choice the target is reachable from, or -1 for "none of
  /// these". The crowd reads all |choices| options, so the *cost* of this
  /// question is |choices| (accounted by the runner, not here).
  virtual int Choice(std::span<const NodeId> choices);
};

/// Truthful oracle backed by a ReachabilityIndex.
class ExactOracle : public Oracle {
 public:
  /// `reach` must outlive the oracle; `target` is the hidden node.
  ExactOracle(const ReachabilityIndex& reach, NodeId target)
      : reach_(&reach), target_(target) {
    AIGS_CHECK(target < reach.graph().NumNodes());
  }

  bool Reach(NodeId q) override { return reach_->Reaches(q, target_); }

  /// The hidden target — exposed for result verification only.
  NodeId target() const { return target_; }

 private:
  const ReachabilityIndex* reach_;
  NodeId target_;
};

}  // namespace aigs

#endif  // AIGS_ORACLE_ORACLE_H_
