// Compressed transitive-closure rows for large DAG hierarchies.
//
// Dense closure rows cost O(n²/8) bytes — ~96 MB at ImageNet's 28k nodes but
// ~125 GB at 1M, so catalog size (not session count) is what caps scaling.
// This representation exploits the structure real hierarchies have: they are
// trees plus a sparse set of extra edges. Node ids are permuted into DFS
// preorder *positions* over a spanning tree, which makes the reachable set of
// every purely tree-like node one contiguous position interval and leaves the
// remaining rows clustered, so per-4096-bit chunks compress well.
//
// Row storage, chosen per row at build time:
//   - interval: R(v) = [pos(v), subtree_end(v)) — 12 bytes, no payload.
//   - chunked: the row's touched position range split into 4096-bit chunks,
//     each encoded as whichever of {dense words, sorted u16 offsets (delta),
//     run-length (start,len) pairs} is smallest for its density.
//
// All set operations (intersect-count-weight against an alive mask, in-place
// AND/ANDNOT, expansion) run directly on the compressed form via the
// word-window kernels in util/bitset — rows are never materialized densely.
// Alive masks and weight tables passed to these operations live in POSITION
// space: bit/entry p corresponds to node `node_at_pos(p)`.
#ifndef AIGS_GRAPH_COMPRESSED_CLOSURE_H_
#define AIGS_GRAPH_COMPRESSED_CLOSURE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/bitset.h"
#include "util/common.h"

namespace aigs {

class ThreadPool;

/// Chunked hybrid-encoded closure rows over a DFS-preorder position
/// permutation. The serial build is streaming: one dense scratch row lives
/// at a time, so peak construction memory is the compressed output plus
/// O(n/8) bytes. The parallel build levelizes the impure rows by dependency
/// depth and shards each level across workers (one scratch row and one
/// local chunk pool per shard), then concatenates the per-row encodings in
/// reverse-topological order — exactly the serial append order, so the
/// encoded bytes are IDENTICAL to the serial build's.
class CompressedClosure {
 public:
  /// Build concurrency. The default builds on every hardware thread via the
  /// shared default pool.
  struct BuildOptions {
    /// Worker count: 0 = hardware concurrency, 1 = serial streaming build.
    int threads = 0;
    /// Caller-owned pool to shard on (overrides `threads`); lets an
    /// evaluator building many datasets reuse one pool instead of
    /// oversubscribing cores with nested ones. Must not be one of the
    /// pool's own worker threads calling in.
    ThreadPool* pool = nullptr;
  };

  /// Builds compressed rows for every node of a finalized digraph whose
  /// root reaches all nodes.
  explicit CompressedClosure(const Digraph& g)
      : CompressedClosure(g, BuildOptions{}) {}
  CompressedClosure(const Digraph& g, const BuildOptions& options);

  /// Test seam: encodes the given dense rows verbatim under the *identity*
  /// position mapping (pos(v) = v). Exercises the chunk codec without a
  /// graph. All rows share one bit-width (which becomes num_nodes(), the
  /// position space); there may be fewer rows than bits.
  explicit CompressedClosure(const std::vector<DynamicBitset>& rows);

  std::size_t num_nodes() const { return n_; }

  /// Position of node v in the DFS-preorder permutation.
  std::size_t pos(NodeId v) const { return pos_[v]; }
  /// Node occupying position p (inverse of pos()).
  NodeId node_at_pos(std::size_t p) const { return node_at_pos_[p]; }

  /// |R(u)|.
  std::size_t RowCount(NodeId u) const { return rows_[u].count; }

  /// True iff v ∈ R(u).
  bool Reaches(NodeId u, NodeId v) const { return TestPos(u, pos_[v]); }

  /// True iff the node at position p is in R(u).
  bool TestPos(NodeId u, std::size_t p) const;

  /// |R(u) ∩ alive| and Σ pos_weights over it, fused — the compressed
  /// counterpart of DynamicBitset::MaskedCountAndWeightedSum. `alive` and
  /// `pos_weights` are in position space.
  DynamicBitset::CountAndWeight IntersectCountAndWeight(
      NodeId u, const DynamicBitset& alive,
      const BlockedWeights& pos_weights) const;

  /// |R(u) ∩ alive|.
  std::size_t IntersectCount(NodeId u, const DynamicBitset& alive) const;

  /// alive &= R(u). Positions outside the row's chunks are cleared.
  void IntersectInto(NodeId u, DynamicBitset& alive) const;

  /// alive &= ~R(u).
  void SubtractFrom(NodeId u, DynamicBitset& alive) const;

  /// out |= R(u). `out` must have num_nodes() bits.
  void ExpandRowInto(NodeId u, DynamicBitset& out) const;

  /// Σ over p ∈ R(u) of (prefix[p+1] − prefix[p]), where `prefix` holds
  /// position-space weight prefix sums (size n+1). O(1) per interval row
  /// and per run; O(bits) for delta/dense chunks.
  Weight RowWeightFromPrefix(NodeId u, std::span<const Weight> prefix) const;

  /// Invokes fn(p) for every position p ∈ R(u), ascending.
  template <typename Fn>
  void ForEachPosInRow(NodeId u, Fn&& fn) const {
    const RowRef& row = rows_[u];
    if (row.extent & kIntervalFlag) {
      const std::size_t end = row.first + (row.extent & ~kIntervalFlag);
      for (std::size_t p = row.first; p < end; ++p) {
        fn(p);
      }
      return;
    }
    for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
      const ChunkRef& ref = chunk_refs_[r];
      const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
      const std::uint16_t items = ChunkItems(ref);
      switch (ChunkKindOf(ref)) {
        case kDenseChunk:
          for (std::uint16_t w = 0; w < items; ++w) {
            std::uint64_t word = word_pool_[ref.payload + w];
            while (word != 0) {
              fn(base + (static_cast<std::size_t>(w) << 6) +
                 static_cast<std::size_t>(std::countr_zero(word)));
              word &= word - 1;
            }
          }
          break;
        case kDeltaChunk:
          for (std::uint16_t i = 0; i < items; ++i) {
            fn(base + u16_pool_[ref.payload + i]);
          }
          break;
        case kRunChunk:
          for (std::uint16_t i = 0; i < items; ++i) {
            const std::size_t start = base + u16_pool_[ref.payload + 2 * i];
            const std::size_t len = u16_pool_[ref.payload + 2 * i + 1];
            for (std::size_t p = start; p < start + len; ++p) {
              fn(p);
            }
          }
          break;
      }
    }
  }

  /// Per-representation row/chunk counts, for bench reporting.
  struct Stats {
    std::size_t interval_rows = 0;
    std::size_t chunked_rows = 0;
    std::size_t dense_chunks = 0;
    std::size_t delta_chunks = 0;
    std::size_t run_chunks = 0;
  };
  Stats stats() const;

  std::size_t NumIntervalRows() const { return stats().interval_rows; }

  /// Bytes held by the index (row table, chunk refs, payload pools, and the
  /// position permutation) — the number the bigcatalog memory gate compares
  /// against the dense n²/8 footprint.
  std::size_t MemoryBytes() const;

  /// True iff the two indexes hold byte-identical encodings: same
  /// permutation, row table, chunk refs, and payload pools. The
  /// parallel-build tests and the kernels suite gate on this against a
  /// serial build.
  bool IdenticalEncoding(const CompressedClosure& other) const;

 private:
  // Chunk geometry: 4096 bits = 64 words per chunk; chunk indices fit u16.
  static constexpr std::size_t kChunkBits = 4096;
  static constexpr std::size_t kChunkWords = kChunkBits / 64;
  static constexpr std::size_t kMaxNodes = std::size_t{65536} * kChunkBits;
  static constexpr std::uint32_t kIntervalFlag = 0x80000000u;

  enum ChunkKind : std::uint16_t {
    kDenseChunk = 0,  // payload: `items` raw words in word_pool_
    kDeltaChunk = 1,  // payload: `items` sorted in-chunk bit offsets (u16)
    kRunChunk = 2,    // payload: `items` (start,len) u16 pairs
  };

  // 12 bytes per row. Interval rows: first = start position, extent =
  // length | kIntervalFlag. Chunked rows: [first, first+extent) indexes
  // chunk_refs_ (ascending chunk order). count = |R(u)| either way.
  struct RowRef {
    std::uint32_t first = 0;
    std::uint32_t extent = 0;
    std::uint32_t count = 0;
    bool operator==(const RowRef&) const = default;
  };

  // 8 bytes per non-empty chunk. meta packs kind (2 bits) | items (14 bits).
  struct ChunkRef {
    std::uint32_t payload = 0;
    std::uint16_t chunk = 0;
    std::uint16_t meta = 0;
    bool operator==(const ChunkRef&) const = default;
  };

  static ChunkKind ChunkKindOf(const ChunkRef& ref) {
    return static_cast<ChunkKind>(ref.meta & 3);
  }
  static std::uint16_t ChunkItems(const ChunkRef& ref) {
    return static_cast<std::uint16_t>(ref.meta >> 2);
  }

  // Destination pools for one row's encoding: the members for the serial
  // streaming build, or a per-row scratch triple during the parallel build
  // (rebased into the members at assembly).
  struct RowSink {
    std::vector<ChunkRef>* refs;
    std::vector<std::uint64_t>* words;
    std::vector<std::uint16_t>* u16;
  };
  // A row encoded into detached pools, plus its build-time touched range —
  // what the parallel build produces per impure row before assembly.
  struct RowEncoding {
    RowRef row;
    std::vector<ChunkRef> refs;
    std::vector<std::uint64_t> words;
    std::vector<std::uint16_t> u16;
  };

  void BuildFromGraph(const Digraph& g, const BuildOptions& options);
  // The parallel level-sharded encode of the impure rows; `pure` marks rows
  // already stored as intervals, `bounds` carries touched ranges across
  // levels. Produces bytes identical to the serial streaming loop.
  void BuildImpureRowsParallel(
      const Digraph& g, const std::vector<bool>& pure,
      std::vector<std::pair<std::uint32_t, std::uint32_t>>& bounds,
      ThreadPool& pool, std::size_t workers);
  // Encodes the bits of `scratch` (position space) in [lo, hi] into `sink`,
  // choosing interval or per-chunk hybrid encodings. `count` is the number
  // of set bits in the range. The returned RowRef's `first` indexes
  // sink.refs AS OF THE CALL (so it is final when the sink is the member
  // pools, and 0-based when the sink is a fresh per-row triple). Interval
  // rows touch no pools.
  RowRef EncodeRowTo(const RowSink& sink, const DynamicBitset& scratch,
                     std::size_t lo, std::size_t hi, std::size_t count) const;
  // Expands one encoded row (wherever its pools live) into `out`.
  static void ExpandEncodedInto(const RowRef& row, const ChunkRef* refs,
                                const std::uint64_t* word_pool,
                                const std::uint16_t* u16_pool,
                                DynamicBitset& out);

  std::size_t n_ = 0;
  std::size_t words_ = 0;  // words per full-width position-space row
  std::vector<std::uint32_t> pos_;
  std::vector<NodeId> node_at_pos_;
  std::vector<RowRef> rows_;
  std::vector<ChunkRef> chunk_refs_;
  std::vector<std::uint64_t> word_pool_;
  std::vector<std::uint16_t> u16_pool_;
};

}  // namespace aigs

#endif  // AIGS_GRAPH_COMPRESSED_CLOSURE_H_
