// Micro-benchmarks (google-benchmark) for the hot building blocks:
// transitive-closure construction, subtree-weight initialization, middle
// point selection, oracle answering and session overlays.
#include <benchmark/benchmark.h>

#include "core/aigs.h"
#include "core/batched_greedy.h"
#include "core/middle_point.h"
#include "core/reach_weight_index.h"
#include "core/split_weight_index.h"
#include "core/tree_weight_index.h"
#include "data/synthetic_catalog.h"
#include "eval/runner.h"
#include "graph/candidate_set.h"
#include "service/engine.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace aigs {
namespace {

CatalogParams SmallTreeParams() {
  CatalogParams p;
  p.num_nodes = 4000;
  p.height = 10;
  p.max_out_degree = 64;
  p.seed = 5;
  return p;
}

CatalogParams SmallDagParams() {
  CatalogParams p = SmallTreeParams();
  p.extra_parent_frac = 0.05;
  p.seed = 6;
  return p;
}

const Hierarchy& TreeHierarchy() {
  static const Hierarchy* h = [] {
    auto built = Hierarchy::Build(GenerateCatalogTree(SmallTreeParams()));
    AIGS_CHECK(built.ok());
    return new Hierarchy(*std::move(built));
  }();
  return *h;
}

const Hierarchy& DagHierarchy() {
  static const Hierarchy* h = [] {
    auto built = Hierarchy::Build(GenerateCatalogDag(SmallDagParams()));
    AIGS_CHECK(built.ok());
    return new Hierarchy(*std::move(built));
  }();
  return *h;
}

const Distribution& TreeDist() {
  static const Distribution* d = new Distribution(
      AssignZipfObjectCounts(TreeHierarchy().NumNodes(), 1'000'000, 1.0, 9));
  return *d;
}

const Distribution& DagDist() {
  static const Distribution* d = new Distribution(
      AssignZipfObjectCounts(DagHierarchy().NumNodes(), 1'000'000, 1.0, 9));
  return *d;
}

void BM_ClosureConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  CatalogParams p = SmallDagParams();
  p.num_nodes = n;
  const Digraph g = GenerateCatalogDag(p);
  for (auto _ : state) {
    ReachabilityIndex index(g);
    benchmark::DoNotOptimize(index.ReachableCount(g.root()));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ClosureConstruction)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Complexity();

void BM_SubtreeWeightInit(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  for (auto _ : state) {
    TreeWeightBase base(h.tree(), TreeDist().weights());
    benchmark::DoNotOptimize(base.Total());
  }
}
BENCHMARK(BM_SubtreeWeightInit);

void BM_ReachWeightInit(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  for (auto _ : state) {
    ReachWeightBase base(h, DagDist().weights());
    benchmark::DoNotOptimize(base.Total());
  }
}
BENCHMARK(BM_ReachWeightInit);

void BM_MiddlePointNaiveScan(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  const auto& weights = DagDist().weights();
  CandidateSet candidates(h.graph());
  BfsScratch scratch(h.NumNodes());
  Weight total = 0;
  for (const Weight w : weights) {
    total += w;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindMiddlePointNaive(
        h.graph(), candidates, h.root(), weights, total, scratch));
  }
}
BENCHMARK(BM_MiddlePointNaiveScan);

void BM_MiddlePointNaiveScanTree(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  const auto& weights = TreeDist().weights();
  CandidateSet candidates(h.graph());
  BfsScratch scratch(h.NumNodes());
  Weight total = 0;
  for (const Weight w : weights) {
    total += w;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindMiddlePointNaive(
        h.graph(), candidates, h.root(), weights, total, scratch));
  }
}
BENCHMARK(BM_MiddlePointNaiveScanTree);

// Old-vs-new middle-point selection: the SplitWeightIndex rows below pair
// with the naive BFS scans above on the same 4k-node synthetic catalogs.
void BM_MiddlePointIndexTree(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  const SplitWeightBase base(h, TreeDist().weights());
  const SplitWeightIndex index(base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.FindMiddlePoint());
  }
}
BENCHMARK(BM_MiddlePointIndexTree);

void BM_MiddlePointIndexDag(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  const SplitWeightBase base(h, DagDist().weights());
  const SplitWeightIndex index(base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.FindMiddlePoint());
  }
}
BENCHMARK(BM_MiddlePointIndexDag);

// One full batched round selection (k picks on a simulated candidate set),
// old per-pick BFS scans vs the incremental index. Session construction is
// excluded from the timed region so the row compares selection only.
template <SelectionBackend kBackend>
void BM_BatchedRoundSelection(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  BatchedGreedyOptions options;
  options.questions_per_round = static_cast<std::size_t>(state.range(0));
  options.backend = kBackend;
  const BatchedGreedyPolicy policy(h, TreeDist(), options);
  for (auto _ : state) {
    state.PauseTiming();
    auto session = policy.NewSession();
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->Next());  // selects the first batch
  }
}
BENCHMARK_TEMPLATE(BM_BatchedRoundSelection, SelectionBackend::kBfsRescan)
    ->Arg(4)->Name("BM_BatchedRoundSelectBfs");
BENCHMARK_TEMPLATE(BM_BatchedRoundSelection, SelectionBackend::kSplitIndex)
    ->Arg(4)->Name("BM_BatchedRoundSelectIndex");

void BM_OracleReach(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  ExactOracle oracle(h.reach(), static_cast<NodeId>(h.NumNodes() - 1));
  NodeId q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Reach(q));
    q = (q + 1) % static_cast<NodeId>(h.NumNodes());
  }
}
BENCHMARK(BM_OracleReach);

void BM_GreedyTreeSearch(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  GreedyTreePolicy policy(h, TreeDist());
  Rng rng(3);
  for (auto _ : state) {
    const NodeId target =
        static_cast<NodeId>(rng.UniformInt(h.NumNodes()));
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    benchmark::DoNotOptimize(RunSearch(*session, oracle).target);
  }
}
BENCHMARK(BM_GreedyTreeSearch);

void BM_GreedyDagSearch(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  GreedyDagPolicy policy(h, DagDist());
  Rng rng(4);
  for (auto _ : state) {
    const NodeId target =
        static_cast<NodeId>(rng.UniformInt(h.NumNodes()));
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    benchmark::DoNotOptimize(RunSearch(*session, oracle).target);
  }
}
BENCHMARK(BM_GreedyDagSearch);

void BM_TreeSessionCreation(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  GreedyTreePolicy policy(h, TreeDist());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.NewSession());
  }
}
BENCHMARK(BM_TreeSessionCreation);

// Sessions/sec on the split-weight selection layer: the old design rebuilt
// the whole index per session (BM_SplitBaseBuild* is exactly that cost —
// Fenwick/prefix construction over all n nodes); the new design opens a
// session as an O(1) overlay over the prebuilt base (BM_SplitSessionCreate*).
template <const Hierarchy& (*GetHierarchy)(), const Distribution& (*GetDist)()>
void BM_SplitBaseBuild(benchmark::State& state) {
  const Hierarchy& h = GetHierarchy();
  const auto& weights = GetDist().weights();
  for (auto _ : state) {
    const SplitWeightBase base(h, weights);
    benchmark::DoNotOptimize(base.Total());
  }
}
BENCHMARK_TEMPLATE(BM_SplitBaseBuild, TreeHierarchy, TreeDist)
    ->Name("BM_SplitBaseBuildTree");
BENCHMARK_TEMPLATE(BM_SplitBaseBuild, DagHierarchy, DagDist)
    ->Name("BM_SplitBaseBuildDag");

template <const Hierarchy& (*GetHierarchy)(), const Distribution& (*GetDist)()>
void BM_SplitSessionCreate(benchmark::State& state) {
  const Hierarchy& h = GetHierarchy();
  const auto& weights = GetDist().weights();
  const SplitWeightBase base(h, weights);
  for (auto _ : state) {
    const SplitWeightIndex session(base);
    benchmark::DoNotOptimize(session.AliveCount());
  }
}
BENCHMARK_TEMPLATE(BM_SplitSessionCreate, TreeHierarchy, TreeDist)
    ->Name("BM_SplitSessionCreateTree");
BENCHMARK_TEMPLATE(BM_SplitSessionCreate, DagHierarchy, DagDist)
    ->Name("BM_SplitSessionCreateDag");

// Service-path sessions/sec: Open+Close of an engine session (ID
// assignment, sharded-map insert/erase, O(1) policy overlay) on a prebuilt
// snapshot.
void BM_EngineOpenClose(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  Engine engine;
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(h);
  config.distribution = TreeDist();
  config.policy_specs = {"greedy_naive"};
  AIGS_CHECK(engine.Publish(std::move(config)).ok());
  for (auto _ : state) {
    const auto id = engine.Open("greedy_naive");
    benchmark::DoNotOptimize(id);
    (void)engine.Close(*id);
  }
}
BENCHMARK(BM_EngineOpenClose);

// Blocked/word-parallel weighted popcount vs the bit-by-bit gather, both
// computing w(closure[v] & alive) with a fully alive mask. Two regimes:
// the dense rows near the root (what the dominance-pruned descent probes —
// the kernel settles full words against block sums) and a sweep over all
// rows (mostly sparse; the kernel must not lose there).
void BM_MaskedWeightedSumBitwiseDense(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  const auto& weights = DagDist().weights();
  const DynamicBitset alive(h.NumNodes(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alive.MaskedWeightedSum(h.reach().ClosureRow(h.root()), weights));
  }
}
BENCHMARK(BM_MaskedWeightedSumBitwiseDense);

void BM_MaskedWeightedSumBlockedDense(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  const auto& weights = DagDist().weights();
  const BlockedWeights blocked(weights);
  const DynamicBitset alive(h.NumNodes(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alive.MaskedWeightedSum(h.reach().ClosureRow(h.root()), blocked));
  }
}
BENCHMARK(BM_MaskedWeightedSumBlockedDense);

void BM_MaskedWeightedSumBitwiseSweep(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  const auto& weights = DagDist().weights();
  const DynamicBitset alive(h.NumNodes(), true);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alive.MaskedWeightedSum(h.reach().ClosureRow(v), weights));
    v = (v + 1) % static_cast<NodeId>(h.NumNodes());
  }
}
BENCHMARK(BM_MaskedWeightedSumBitwiseSweep);

void BM_MaskedWeightedSumBlockedSweep(benchmark::State& state) {
  const Hierarchy& h = DagHierarchy();
  const auto& weights = DagDist().weights();
  const BlockedWeights blocked(weights);
  const DynamicBitset alive(h.NumNodes(), true);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alive.MaskedWeightedSum(h.reach().ClosureRow(v), blocked));
    v = (v + 1) % static_cast<NodeId>(h.NumNodes());
  }
}
BENCHMARK(BM_MaskedWeightedSumBlockedSweep);

void BM_OnlineWeightUpdate(benchmark::State& state) {
  const Hierarchy& h = TreeHierarchy();
  GreedyTreePolicy policy(h, TreeDist());
  Rng rng(5);
  for (auto _ : state) {
    policy.mutable_base()->AddWeight(
        static_cast<NodeId>(rng.UniformInt(h.NumNodes())), 1);
  }
}
BENCHMARK(BM_OnlineWeightUpdate);

}  // namespace
}  // namespace aigs

BENCHMARK_MAIN();
