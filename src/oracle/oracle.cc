#include "oracle/oracle.h"

namespace aigs {

int Oracle::Choice(std::span<const NodeId> choices) {
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (Reach(choices[i])) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace aigs
