#include "prob/weight_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace aigs {

std::string SerializeDistribution(const Distribution& dist) {
  std::string out = "# aigs-counts v1\n";
  out += "n " + std::to_string(dist.size()) + "\n";
  for (NodeId v = 0; v < dist.size(); ++v) {
    if (dist.WeightOf(v) > 0) {
      out += "c " + std::to_string(v) + " " +
             std::to_string(dist.WeightOf(v)) + "\n";
    }
  }
  return out;
}

StatusOr<Distribution> ParseDistribution(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  bool have_n = false;
  std::vector<Weight> weights;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    const auto error = [&](const std::string& msg) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     msg);
    };
    if (trimmed[0] == 'n') {
      if (have_n) {
        return error("duplicate 'n' directive");
      }
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t n,
                            ParseUint64(trimmed.substr(1)));
      if (n == 0 || n >= kInvalidNode) {
        return error("node count out of range");
      }
      weights.assign(static_cast<std::size_t>(n), 0);
      have_n = true;
      continue;
    }
    if (!have_n) {
      return error("'n' directive must come first");
    }
    if (trimmed[0] == 'c') {
      const auto fields = Split(std::string_view(Trim(trimmed.substr(1))), ' ');
      if (fields.size() != 2) {
        return error("count directive needs '<id> <count>'");
      }
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t id, ParseUint64(fields[0]));
      AIGS_ASSIGN_OR_RETURN(const std::uint64_t count,
                            ParseUint64(fields[1]));
      if (id >= weights.size()) {
        return error("node id out of range");
      }
      weights[static_cast<std::size_t>(id)] = count;
      continue;
    }
    return error("unknown directive '" + std::string(1, trimmed[0]) + "'");
  }
  if (!have_n) {
    return Status::InvalidArgument("missing 'n' directive");
  }
  return Distribution::FromWeights(std::move(weights));
}

Status SaveDistribution(const Distribution& dist, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const std::string text = SerializeDistribution(dist);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) {
    return Status::IOError("write failed for '" + path + "'");
  }
  return Status::OK();
}

StatusOr<Distribution> LoadDistribution(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseDistribution(buffer.str());
}

}  // namespace aigs
