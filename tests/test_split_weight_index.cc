// The SplitWeightIndex selection layer: (1) the equivalence suite — the
// incremental backends must ask bit-identical question sequences to the
// naive BFS-rescan references across tree/DAG hierarchies and distribution
// families, which is what keeps Evaluator results bit-identical after the
// rewiring; (2) property tests for the Fenwick/bitset state after
// ApplyYes/ApplyNo/ApplyBatch against brute-force recomputation.
#include "core/split_weight_index.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/batched_greedy.h"
#include "core/cost_sensitive.h"
#include "core/greedy_naive.h"
#include "core/middle_point.h"
#include "data/builtin.h"
#include "data/synthetic_catalog.h"
#include "graph/candidate_set.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "tests/test_support.h"
#include "util/fenwick.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::MustDist;

std::vector<Weight> RandomWeights(std::size_t n, Rng& rng, Weight max_value,
                                  double zero_frac) {
  std::vector<Weight> w(n);
  bool any = false;
  for (auto& x : w) {
    x = rng.Bernoulli(zero_frac) ? 0 : rng.UniformInt(max_value) + 1;
    any |= x > 0;
  }
  if (!any) {
    w[0] = 1;
  }
  return w;
}

// ---- Fenwick tree ----------------------------------------------------------

TEST(FenwickTree, BuildAndPointUpdatesMatchBruteForce) {
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.UniformInt(100);
    std::vector<Weight> values(n);
    for (auto& v : values) {
      v = rng.UniformInt(1000);
    }
    FenwickTree<Weight> tree(values);
    for (int step = 0; step < 30; ++step) {
      const std::size_t i = rng.UniformInt(n);
      if (rng.Bernoulli(0.5) && values[i] > 0) {
        // Subtract via modular wrap-around, the kill pattern.
        const Weight delta = rng.UniformInt(values[i]) + 1;
        tree.Add(i, Weight{0} - delta);
        values[i] -= delta;
      } else {
        const Weight delta = rng.UniformInt(500);
        tree.Add(i, delta);
        values[i] += delta;
      }
      const std::size_t begin = rng.UniformInt(n + 1);
      const std::size_t end = begin + rng.UniformInt(n + 1 - begin);
      Weight expected = 0;
      for (std::size_t k = begin; k < end; ++k) {
        expected += values[k];
      }
      ASSERT_EQ(tree.RangeSum(begin, end), expected);
    }
    Weight total = 0;
    for (const Weight v : values) {
      total += v;
    }
    EXPECT_EQ(tree.Total(), total);
  }
}

// ---- index state vs brute force -------------------------------------------

// Mirrors an index through random yes/no answers (possibly referencing dead
// nodes, as batched rounds do) and checks every incremental quantity against
// recomputation over the mirrored alive set.
void CheckStateAgainstBruteForce(const Hierarchy& h,
                                 const std::vector<Weight>& weights,
                                 Rng& steps) {
  const SplitWeightBase base(h, weights);
  SplitWeightIndex index(base);
  std::set<NodeId> alive;
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    alive.insert(v);
  }
  for (int step = 0; step < 12 && alive.size() > 1; ++step) {
    // Any node may be asked about — including an already-dead one when
    // simulating a batched round's later answers.
    const NodeId q =
        static_cast<NodeId>(steps.UniformInt(h.NumNodes()));
    const bool yes = steps.Bernoulli(0.5);
    if (yes) {
      index.ApplyYes(q);
      for (auto it = alive.begin(); it != alive.end();) {
        it = h.reach().Reaches(q, *it) ? std::next(it) : alive.erase(it);
      }
    } else {
      index.ApplyNo(q);
      for (auto it = alive.begin(); it != alive.end();) {
        it = h.reach().Reaches(q, *it) ? alive.erase(it) : std::next(it);
      }
    }
    Weight expected_total = 0;
    for (const NodeId x : alive) {
      expected_total += weights[x];
    }
    ASSERT_EQ(index.AliveCount(), alive.size());
    ASSERT_EQ(index.TotalAlive(), expected_total);
    std::size_t enumerated = 0;
    index.ForEachAlive([&](NodeId v) {
      ++enumerated;
      ASSERT_TRUE(alive.count(v) > 0) << "node " << v;
    });
    ASSERT_EQ(enumerated, alive.size());
    for (NodeId v = 0; v < h.NumNodes(); ++v) {
      ASSERT_EQ(index.IsAlive(v), alive.count(v) > 0) << "node " << v;
      Weight expected_w = 0;
      std::size_t expected_c = 0;
      for (const NodeId x : alive) {
        if (h.reach().Reaches(v, x)) {
          expected_w += weights[x];
          ++expected_c;
        }
      }
      ASSERT_EQ(index.ReachWeight(v), expected_w) << "node " << v;
      ASSERT_EQ(index.ReachCount(v), expected_c) << "node " << v;
    }
    if (alive.empty()) {
      break;
    }
  }
}

TEST(SplitWeightIndex, EulerStateMatchesBruteForce) {
  Rng rng(2);
  for (int round = 0; round < 15; ++round) {
    const Hierarchy h = MustBuild(RandomTree(2 + rng.UniformInt(40), rng));
    const auto weights = RandomWeights(h.NumNodes(), rng, 1000, 0.3);
    Rng steps(rng.Next());
    CheckStateAgainstBruteForce(h, weights, steps);
  }
}

TEST(SplitWeightIndex, ClosureStateMatchesBruteForce) {
  Rng rng(3);
  for (int round = 0; round < 15; ++round) {
    const Hierarchy h =
        MustBuild(RandomDag(2 + rng.UniformInt(35), rng, 0.5));
    const auto weights = RandomWeights(h.NumNodes(), rng, 1000, 0.3);
    Rng steps(rng.Next());
    CheckStateAgainstBruteForce(h, weights, steps);
  }
}

TEST(SplitWeightIndex, ApplyBatchIntersectsAllAnswers) {
  Rng rng(4);
  for (int round = 0; round < 15; ++round) {
    const bool dag = rng.Bernoulli(0.5);
    const Hierarchy h = MustBuild(dag ? RandomDag(20, rng, 0.5)
                                      : RandomTree(20, rng));
    const auto weights = RandomWeights(h.NumNodes(), rng, 100, 0.2);
    const SplitWeightBase base(h, weights);
    SplitWeightIndex index(base);
    std::vector<NodeId> nodes;
    std::vector<bool> answers;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.UniformInt(h.NumNodes())));
      answers.push_back(rng.Bernoulli(0.5));
    }
    index.ApplyBatch(nodes, answers);
    std::size_t expected_count = 0;
    Weight expected_total = 0;
    for (NodeId t = 0; t < h.NumNodes(); ++t) {
      bool survives = true;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        survives &= h.reach().Reaches(nodes[i], t) == answers[i];
      }
      ASSERT_EQ(index.IsAlive(t), survives) << "node " << t;
      expected_count += survives ? 1 : 0;
      expected_total += survives ? weights[t] : 0;
    }
    ASSERT_EQ(index.AliveCount(), expected_count);
    ASSERT_EQ(index.TotalAlive(), expected_total);
  }
}

TEST(SplitWeightIndex, ResetFromCopiesSessionState) {
  Rng rng(5);
  const Hierarchy h = MustBuild(RandomTree(30, rng));
  const auto weights = RandomWeights(h.NumNodes(), rng, 100, 0.0);
  const SplitWeightBase base(h, weights);
  SplitWeightIndex a(base);
  SplitWeightIndex b(base);
  a.ApplyNo(static_cast<NodeId>(h.NumNodes() - 1));
  b.ResetFrom(a);
  ASSERT_EQ(b.AliveCount(), a.AliveCount());
  ASSERT_EQ(b.TotalAlive(), a.TotalAlive());
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    ASSERT_EQ(b.IsAlive(v), a.IsAlive(v));
    ASSERT_EQ(b.ReachWeight(v), a.ReachWeight(v));
  }
  // Mutating the copy must not leak back.
  b.ApplyNo(b.FindSplittingMiddlePoint().node);
  ASSERT_LT(b.AliveCount(), a.AliveCount());
}

TEST(CandidateSet, ResetFromReusesStorage) {
  Rng rng(6);
  const Hierarchy h = MustBuild(RandomDag(25, rng, 0.4));
  CandidateSet a(h.graph());
  a.RemoveReachable(5);
  CandidateSet b(h.graph());
  b.ResetFrom(a);
  ASSERT_EQ(b.alive_count(), a.alive_count());
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    ASSERT_EQ(b.IsAlive(v), a.IsAlive(v));
  }
}

// ---- middle-point selection vs the naive reference -------------------------

TEST(SplitWeightIndex, FindMiddlePointMatchesNaiveScanMidSearch) {
  // Random partially-consumed search states: the pruned descent must return
  // exactly the naive scan's argmin node (same value, same smallest-id
  // tie-break), including under zero-weight ties.
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    const bool dag = rng.Bernoulli(0.5);
    const Hierarchy h = MustBuild(dag ? RandomDag(2 + rng.UniformInt(35),
                                                  rng, 0.5)
                                      : RandomTree(2 + rng.UniformInt(35),
                                                   rng));
    const auto weights = RandomWeights(h.NumNodes(), rng, 20, 0.5);
    const SplitWeightBase base(h, weights);
    SplitWeightIndex index(base);
    CandidateSet mirror(h.graph());
    NodeId root = h.root();
    BfsScratch scratch(h.NumNodes());
    Rng steps(rng.Next());
    while (index.AliveCount() > 1) {
      Weight total = 0;
      mirror.bits().ForEachSetBit(
          [&](std::size_t v) { total += weights[v]; });
      ASSERT_EQ(index.TotalAlive(), total);
      const MiddlePoint naive = FindMiddlePointNaive(
          h.graph(), mirror, root, weights, total, scratch);
      const MiddlePoint fast = index.FindMiddlePoint();
      ASSERT_EQ(fast.node, naive.node);
      ASSERT_EQ(fast.split_diff, naive.split_diff);
      ASSERT_EQ(fast.reach_weight, naive.reach_weight);
      // Advance both states along a random answer.
      const NodeId q = naive.node;
      if (steps.Bernoulli(0.5)) {
        index.ApplyYes(q);
        mirror.RestrictToReachable(q);
        root = q;
      } else {
        index.ApplyNo(q);
        mirror.RemoveReachable(q);
      }
      if (mirror.alive_count() == 0) {
        break;
      }
    }
  }
}

TEST(SplitWeightIndex, FindSplittingMiddlePointMatchesFlatScan) {
  // The Euler-mode pruned/rooted descent (PR-2 follow-up, landed in PR 4)
  // must return exactly the flat scan's (diff, id) argmin over splitting
  // candidates — including on post-yes intersection states reached through
  // whole batched rounds, where a round may answer yes for an ancestor of
  // another yes of the same round.
  const auto flat_reference = [](const SplitWeightIndex& index) {
    const Weight total = index.TotalAlive();
    const std::size_t count = index.AliveCount();
    MiddlePoint best;
    index.ForEachAlive([&](NodeId v) {
      if (index.ReachCount(v) == count) {
        return;
      }
      const Weight w = index.ReachWeight(v);
      const Weight rest = total - w;
      const Weight diff = w > rest ? w - rest : rest - w;
      if (best.node == kInvalidNode || diff < best.split_diff ||
          (diff == best.split_diff && v < best.node)) {
        best.node = v;
        best.split_diff = diff;
        best.reach_weight = w;
      }
    });
    return best;
  };

  Rng rng(29);
  for (int round = 0; round < 60; ++round) {
    const bool dag = rng.Bernoulli(0.3);
    const Hierarchy h = MustBuild(dag ? RandomDag(2 + rng.UniformInt(40),
                                                  rng, 0.4)
                                      : RandomTree(2 + rng.UniformInt(40),
                                                   rng));
    const auto weights = RandomWeights(h.NumNodes(), rng, 20, 0.5);
    const SplitWeightBase base(h, weights);
    const NodeId target =
        static_cast<NodeId>(rng.UniformInt(h.NumNodes()));
    SplitWeightIndex state(base);
    SplitWeightIndex simulated(base);
    int guard = 0;
    while (state.AliveCount() > 1 && ++guard < 300) {
      // One batched round of up to 3 questions, checking the descent
      // against the flat scan at every pick of the round simulation.
      std::vector<NodeId> batch;
      simulated.ResetFrom(state);
      while (batch.size() < 3 && simulated.AliveCount() > 1) {
        const MiddlePoint fast = simulated.FindSplittingMiddlePoint();
        const MiddlePoint reference = flat_reference(simulated);
        ASSERT_EQ(fast.node, reference.node);
        ASSERT_EQ(fast.split_diff, reference.split_diff);
        ASSERT_EQ(fast.reach_weight, reference.reach_weight);
        if (fast.node == kInvalidNode) {
          break;
        }
        batch.push_back(fast.node);
        simulated.ApplyNo(fast.node);
      }
      ASSERT_FALSE(batch.empty());
      std::vector<bool> answers(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        answers[i] = h.reach().Reaches(batch[i], target);
      }
      state.ApplyBatch(batch, answers);
      ASSERT_GT(state.AliveCount(), 0u);
    }
  }
}

// ---- full question-sequence equivalence ------------------------------------

/// Records the full interaction transcript of a session: sequential queries
/// as single-element rounds, batch queries as their node lists.
std::vector<std::vector<NodeId>> RecordTranscript(SearchSession& session,
                                                  Oracle& oracle,
                                                  NodeId expected_target) {
  std::vector<std::vector<NodeId>> rounds;
  for (;;) {
    const Query q = session.Next();
    if (q.kind == Query::Kind::kDone) {
      EXPECT_EQ(q.node, expected_target);
      return rounds;
    }
    if (q.kind == Query::Kind::kReach) {
      rounds.push_back({q.node});
      session.OnReach(q.node, oracle.Reach(q.node));
      continue;
    }
    AIGS_CHECK(q.kind == Query::Kind::kReachBatch);
    rounds.push_back(q.choices);
    std::vector<bool> answers;
    answers.reserve(q.choices.size());
    for (const NodeId v : q.choices) {
      answers.push_back(oracle.Reach(v));
    }
    session.OnReachBatch(q.choices, answers);
  }
}

void ExpectIdenticalTranscripts(const Policy& fast, const Policy& reference,
                                const Hierarchy& h, const char* what) {
  for (NodeId target = 0; target < h.NumNodes(); ++target) {
    ExactOracle oracle(h.reach(), target);
    auto fast_session = fast.NewSession();
    auto ref_session = reference.NewSession();
    const auto fast_rounds = RecordTranscript(*fast_session, oracle, target);
    const auto ref_rounds = RecordTranscript(*ref_session, oracle, target);
    ASSERT_EQ(fast_rounds, ref_rounds)
        << what << ": transcripts diverge for target " << target;
  }
}

struct EquivalenceCase {
  std::string name;
  Hierarchy hierarchy;
  Distribution distribution;
};

std::vector<EquivalenceCase> EquivalenceCases() {
  std::vector<EquivalenceCase> cases;
  Rng rng(2022);

  // Tree and DAG hierarchies × uniform / Zipf / with-zeros distributions.
  for (const bool dag : {false, true}) {
    for (const char* dist_kind : {"uniform", "zipf", "zeros"}) {
      Rng g(rng.Next());
      Hierarchy h = MustBuild(dag ? RandomDag(40, g, 0.4)
                                  : RandomTree(40, g));
      Distribution dist =
          std::string_view(dist_kind) == "uniform"
              ? UniformRandomDistribution(h.NumNodes(), g)
          : std::string_view(dist_kind) == "zipf"
              ? ZipfRandomDistribution(h.NumNodes(), 2.0, g)
              : MustDist(RandomWeights(h.NumNodes(), g, 50, 0.5));
      cases.push_back({std::string(dag ? "dag/" : "tree/") + dist_kind,
                       std::move(h), std::move(dist)});
    }
  }

  // Real data: the paper's vehicle hierarchy with its published counts, and
  // catalog-shaped synthetics with empirical (Zipf object-count) weights.
  cases.push_back({"vehicle/real", MustBuild(BuildVehicleHierarchy()),
                   VehicleDistribution()});
  CatalogParams tree_params;
  tree_params.num_nodes = 220;
  tree_params.height = 7;
  tree_params.max_out_degree = 8;
  tree_params.seed = 11;
  cases.push_back(
      {"catalog_tree/real", MustBuild(GenerateCatalogTree(tree_params)),
       AssignZipfObjectCounts(220, 100'000, 1.0, 12)});
  CatalogParams dag_params = tree_params;
  dag_params.extra_parent_frac = 0.08;
  dag_params.seed = 13;
  Hierarchy catalog_dag = MustBuild(GenerateCatalogDag(dag_params));
  Distribution catalog_dist =
      AssignZipfObjectCounts(catalog_dag.NumNodes(), 100'000, 1.0, 14);
  cases.push_back({"catalog_dag/real", std::move(catalog_dag),
                   std::move(catalog_dist)});
  return cases;
}

TEST(SelectionEquivalence, GreedyNaiveIndexMatchesBfsReference) {
  for (const EquivalenceCase& c : EquivalenceCases()) {
    SCOPED_TRACE(c.name);
    GreedyNaiveOptions bfs;
    bfs.backend = SelectionBackend::kBfsRescan;
    const GreedyNaivePolicy fast(c.hierarchy, c.distribution);
    const GreedyNaivePolicy reference(c.hierarchy, c.distribution, bfs);
    ExpectIdenticalTranscripts(fast, reference, c.hierarchy, c.name.c_str());
  }
}

TEST(SelectionEquivalence, BatchedIndexMatchesBfsReference) {
  for (const EquivalenceCase& c : EquivalenceCases()) {
    SCOPED_TRACE(c.name);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
      BatchedGreedyOptions fast_options;
      fast_options.questions_per_round = k;
      BatchedGreedyOptions ref_options = fast_options;
      ref_options.backend = SelectionBackend::kBfsRescan;
      const BatchedGreedyPolicy fast(c.hierarchy, c.distribution,
                                     fast_options);
      const BatchedGreedyPolicy reference(c.hierarchy, c.distribution,
                                          ref_options);
      ExpectIdenticalTranscripts(fast, reference, c.hierarchy,
                                 c.name.c_str());
    }
  }
}

TEST(SelectionEquivalence, CostSensitiveMatchesBfsReferenceScan) {
  // The index-backed cost-sensitive session must pick the same argmax of
  // p(G_v∩C)·p(C\G_v)/c(v) as a from-scratch BFS scan in ascending node-id
  // order (first-wins tie-break), step by step.
  Rng rng(8);
  for (const EquivalenceCase& c : EquivalenceCases()) {
    SCOPED_TRACE(c.name);
    const Hierarchy& h = c.hierarchy;
    Rng cost_rng(rng.Next());
    const CostModel costs =
        CostModel::UniformRandom(h.NumNodes(), 1, 9, cost_rng);
    CostSensitiveOptions options;  // rounded weights, Theorem 4's setting
    const CostSensitiveGreedyPolicy policy(h, c.distribution, costs, options);
    const std::vector<Weight> weights =
        RoundWeights(c.distribution, options.rounding);

    for (NodeId target = 0; target < h.NumNodes(); ++target) {
      ExactOracle oracle(h.reach(), target);
      auto session = policy.NewSession();
      CandidateSet mirror(h.graph());
      NodeId root = h.root();
      BfsScratch scratch(h.NumNodes());
      for (;;) {
        const Query q = session->Next();
        if (q.kind == Query::Kind::kDone) {
          ASSERT_EQ(q.node, target);
          break;
        }
        Weight total = 0;
        mirror.bits().ForEachSetBit(
            [&](std::size_t v) { total += weights[v]; });
        NodeId expected = kInvalidNode;
        U128 best_product = 0;
        std::uint32_t best_cost = 1;
        mirror.bits().ForEachSetBit([&](std::size_t raw) {
          const NodeId v = static_cast<NodeId>(raw);
          if (v == root) {
            return;
          }
          Weight inside = 0;
          scratch.ForwardBfs(
              h.graph(), v,
              [&mirror](NodeId x) { return mirror.IsAlive(x); },
              [&](NodeId x) { inside += weights[x]; });
          const U128 product =
              static_cast<U128>(inside) * static_cast<U128>(total - inside);
          const std::uint32_t cost = costs.CostOf(v);
          if (expected == kInvalidNode ||
              product * best_cost > best_product * cost) {
            expected = v;
            best_product = product;
            best_cost = cost;
          }
        });
        ASSERT_EQ(q.node, expected) << "target " << target;
        const bool yes = oracle.Reach(q.node);
        session->OnReach(q.node, yes);
        if (yes) {
          mirror.RestrictToReachable(q.node);
          root = q.node;
        } else {
          mirror.RemoveReachable(q.node);
        }
      }
    }
  }
}

}  // namespace
}  // namespace aigs
