// Walker alias method: O(1) sampling from a fixed discrete distribution.
// Object streams for the online-learning experiment (Fig. 4) draw 100k+
// targets per trace, so constant-time sampling matters.
#ifndef AIGS_PROB_ALIAS_TABLE_H_
#define AIGS_PROB_ALIAS_TABLE_H_

#include <vector>

#include "prob/distribution.h"
#include "util/rng.h"

namespace aigs {

/// Immutable alias table built from a Distribution.
class AliasTable {
 public:
  /// Preprocesses the distribution in O(n).
  explicit AliasTable(const Distribution& dist);

  /// Draws one node with probability weight(v)/total.
  NodeId Sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;   // acceptance probability per bucket
  std::vector<NodeId> alias_;  // fallback node per bucket
};

}  // namespace aigs

#endif  // AIGS_PROB_ALIAS_TABLE_H_
