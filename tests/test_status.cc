#include "util/status.h"

#include <gtest/gtest.h>

namespace aigs {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  *v = 43;
  EXPECT_EQ(v.value(), 43);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  const std::string s = *std::move(v);
  EXPECT_EQ(s, "hello");
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

namespace {
Status FailWhenNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status Propagates(int x) {
  AIGS_RETURN_NOT_OK(FailWhenNegative(x));
  return Status::OK();
}

StatusOr<int> Doubled(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return 2 * x;
}

StatusOr<int> UsesAssignOrReturn(int x) {
  AIGS_ASSIGN_OR_RETURN(const int doubled, Doubled(x));
  return doubled + 1;
}
}  // namespace

TEST(StatusMacros, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacros, AssignOrReturn) {
  auto ok = UsesAssignOrReturn(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_FALSE(UsesAssignOrReturn(-1).ok());
}

}  // namespace
}  // namespace aigs
