// Reference middle-point computation (Definition 4) by brute force:
// evaluates p(G_v ∩ C) for every alive candidate with a fresh BFS
// (Algorithm 3, GetReachableSetWeight) — O(n·m) per pick. This is the
// reference oracle: GreedyNaive's backend=bfs path queries it every round,
// and both the efficient policies and the incremental SplitWeightIndex
// (split_weight_index.h) are property-tested against it.
#ifndef AIGS_CORE_MIDDLE_POINT_H_
#define AIGS_CORE_MIDDLE_POINT_H_

#include <vector>

#include "graph/candidate_set.h"
#include "graph/digraph.h"
#include "util/common.h"

namespace aigs {

/// Result of a middle-point scan.
struct MiddlePoint {
  /// The argmin node (kInvalidNode when no candidate other than the root
  /// exists).
  NodeId node = kInvalidNode;
  /// |2·p(G_node ∩ C) − p(C)| at the argmin.
  Weight split_diff = 0;
  /// p(G_node ∩ C) at the argmin.
  Weight reach_weight = 0;
};

/// Σ weights over R(v) ∩ C via BFS among alive nodes (Algorithm 3).
Weight GetReachableSetWeight(const Digraph& g, const CandidateSet& candidates,
                             NodeId v, const std::vector<Weight>& weights,
                             BfsScratch& scratch);

/// Scans every alive candidate except `root` (querying the current root is
/// a wasted question — its answer is known) and returns the node minimizing
/// |2·p(G_v ∩ C) − p(C)|; ties break toward the smaller node id.
/// `total_alive_weight` must equal Σ weights over C. `scratch` is caller-
/// owned so per-pick callers don't pay a full-size allocation per scan.
MiddlePoint FindMiddlePointNaive(const Digraph& g,
                                 const CandidateSet& candidates, NodeId root,
                                 const std::vector<Weight>& weights,
                                 Weight total_alive_weight,
                                 BfsScratch& scratch);

}  // namespace aigs

#endif  // AIGS_CORE_MIDDLE_POINT_H_
