#include "bench/suites.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/policy_registry.h"
#include "data/builtin.h"
#include "eval/decision_tree.h"
#include "eval/online.h"
#include "eval/optimal_dp.h"
#include "eval/runner.h"
#include "eval/runtime_bench.h"
#include "graph/generators.h"
#include "net/loadgen.h"
#include "net/server.h"
#include "net/shard_router.h"
#include "oracle/noisy_oracle.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"
#include "service/engine.h"
#include "util/ascii_table.h"
#include "util/env.h"
#include "util/kernels.h"
#include "util/percentile.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace aigs::bench {
namespace {

// ---- shared plumbing -------------------------------------------------------

/// Runs one scenario with the context's thread setting applied; smoke mode
/// clamps repetitions and sample counts.
StatusOr<ScenarioResult> Run(SuiteContext& ctx, ScenarioSpec spec) {
  spec.threads = ctx.threads;
  if (ctx.smoke) {
    spec.reps = 1;
    if (spec.samples > 0) {
      spec.samples = std::min<std::size_t>(spec.samples, 1000);
    }
  }
  AIGS_ASSIGN_OR_RETURN(ScenarioResult result, RunScenario(spec, *ctx.cache));
  if (ctx.results != nullptr) {
    ctx.results->push_back(result);
  }
  return result;
}

/// Creates a policy from a registry spec bound to a dataset's hierarchy and
/// an explicit distribution (for the custom, non-scenario measurements).
StatusOr<std::unique_ptr<Policy>> MakePolicyFor(const std::string& spec,
                                                const Hierarchy& h,
                                                const Distribution& dist,
                                                const CostModel* costs =
                                                    nullptr) {
  PolicyContext context;
  context.hierarchy = &h;
  context.distribution = &dist;
  context.cost_model = costs;
  return PolicyRegistry::Global().Create(spec, context);
}

/// Average per-search wall time over targets sampled from the distribution.
double AvgSearchMillis(const Policy& policy, const Hierarchy& h,
                       const Distribution& dist, std::size_t samples) {
  const AliasTable sampler(dist);
  Rng rng(17);
  WallTimer timer;
  for (std::size_t i = 0; i < samples; ++i) {
    const NodeId target = sampler.Sample(rng);
    ExactOracle oracle(h.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle);
    AIGS_CHECK(r.target == target);
  }
  return timer.ElapsedMillis() / static_cast<double>(samples);
}

/// The paper's four competitors, each evaluated as its own scenario.
struct CompetitorCosts {
  double top_down = 0;
  double migs = 0;
  double wigs = 0;
  double greedy = 0;
};

StatusOr<CompetitorCosts> RunCompetitors(SuiteContext& ctx,
                                         const std::string& dataset,
                                         double scale,
                                         const std::string& distribution,
                                         std::size_t reps, std::uint64_t seed,
                                         const std::string& label) {
  CompetitorCosts costs;
  const struct {
    const char* policy;
    double* out;
  } rows[] = {{"top_down", &costs.top_down},
              {"migs", &costs.migs},
              {"wigs", &costs.wigs},
              {"greedy", &costs.greedy}};
  for (const auto& row : rows) {
    ScenarioSpec spec;
    spec.label = label + "/" + row.policy;
    spec.dataset = dataset;
    spec.scale = scale;
    spec.distribution = distribution;
    spec.policy = row.policy;
    spec.reps = reps;
    spec.seed = seed;
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult result, Run(ctx, spec));
    *row.out = result.expected_cost;
  }
  return costs;
}

void PrintConfig(const SuiteContext& ctx, const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("config: scale=%.0f%%, reps=%zu, threads=%s%s\n\n",
              ctx.scale * 100.0, ctx.reps,
              ctx.threads == 0 ? "auto" : std::to_string(ctx.threads).c_str(),
              ctx.smoke ? ", smoke" : "");
}

// ---- table2: dataset statistics -------------------------------------------

Status SuiteTable2(SuiteContext& ctx) {
  PrintConfig(ctx, "Table II: statistics of datasets");
  AsciiTable table(
      {"Dataset", "#nodes", "Height", "Max Deg.", "Type", "#objects"});
  for (const char* name : {"amazon", "imagenet"}) {
    AIGS_ASSIGN_OR_RETURN(const Dataset* d, ctx.cache->Get(name, ctx.scale));
    table.AddRow({d->name, FormatWithCommas(d->hierarchy.NumNodes()),
                  std::to_string(d->hierarchy.Height()),
                  std::to_string(d->hierarchy.MaxOutDegree()),
                  d->hierarchy.is_tree() ? "Tree" : "DAG",
                  FormatWithCommas(d->num_objects)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper (full scale): Amazon 29,240/10/225/Tree/13,886,889 ; "
              "ImageNet 27,714/13/402/DAG/12,656,970\n");
  return Status::OK();
}

// ---- table3: real data distribution ---------------------------------------

Status SuiteTable3(SuiteContext& ctx) {
  PrintConfig(ctx, "Table III: cost under real data distribution");
  AsciiTable table(
      {"Dataset", "TopDown", "MIGS", "WIGS", "GreedyTree/GreedyDAG"});
  for (const char* name : {"amazon", "imagenet"}) {
    AIGS_ASSIGN_OR_RETURN(
        const CompetitorCosts c,
        RunCompetitors(ctx, name, ctx.scale, "real", 1, 1000,
                       std::string("table3/") + name));
    table.AddRow({name, FormatDouble(c.top_down), FormatDouble(c.migs),
                  FormatDouble(c.wigs), FormatDouble(c.greedy)});
    std::printf("%s: greedy saves %s%% vs TopDown, %s%% vs MIGS, %s%% vs "
                "WIGS\n",
                name,
                FormatDouble((1 - c.greedy / c.top_down) * 100, 1).c_str(),
                FormatDouble((1 - c.greedy / c.migs) * 100, 1).c_str(),
                FormatDouble((1 - c.greedy / c.wigs) * 100, 1).c_str());
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("paper: Amazon 92.23/89.19/37.35/21.02 ; "
              "ImageNet 101.18/96.28/30.18/22.29\n");
  return Status::OK();
}

// ---- table4 / table5: synthetic probability settings ----------------------

Status RunSettingsTable(SuiteContext& ctx, const char* dataset,
                        std::uint64_t seed, const char* title,
                        const char* paper_reference) {
  PrintConfig(ctx, title);
  AIGS_ASSIGN_OR_RETURN(const Dataset* d, ctx.cache->Get(dataset, ctx.scale));
  AsciiTable table({"Distribution", "TopDown", "MIGS", "WIGS",
                    d->hierarchy.is_tree() ? "GreedyTree" : "GreedyDAG"});
  const char* settings[] = {"equal", "uniform", "exponential", "zipf:2"};
  for (const char* setting : settings) {
    const std::size_t reps =
        std::string_view(setting) == "equal" ? 1 : ctx.reps;
    AIGS_ASSIGN_OR_RETURN(
        const CompetitorCosts c,
        RunCompetitors(ctx, dataset, ctx.scale, setting, reps, seed,
                       std::string(dataset) + "/" + setting));
    table.AddRow({setting, FormatDouble(c.top_down), FormatDouble(c.migs),
                  FormatDouble(c.wigs), FormatDouble(c.greedy)});
  }
  std::printf("%s\n%s\n", table.ToString().c_str(), paper_reference);
  return Status::OK();
}

Status SuiteTable4(SuiteContext& ctx) {
  return RunSettingsTable(
      ctx, "amazon", 1000, "Table IV: cost under probability settings (Amazon)",
      "paper: Equal 81.17/80.81/27.42/25.35 ; Uniform 81.28/81.19/27.47/23.68 "
      ";\n       Exponential 82.42/81.65/27.37/22.70 ; Zipf "
      "82.09/81.94/27.55/14.03");
}

Status SuiteTable5(SuiteContext& ctx) {
  return RunSettingsTable(
      ctx, "imagenet", 2000,
      "Table V: cost under probability settings (ImageNet)",
      "paper: Equal 123.31/126.12/34.56/31.48 ; Uniform "
      "125.82/124.66/34.55/28.66 ;\n       Exponential "
      "125.41/127.39/34.57/27.00 ; Zipf 125.24/133.48/34.74/14.41");
}

// ---- fig4: online learning -------------------------------------------------

Status SuiteFig4(SuiteContext& ctx) {
  PrintConfig(ctx, "Fig. 4: average cost vs. number of categorized objects");
  for (const char* name : {"amazon", "imagenet"}) {
    AIGS_ASSIGN_OR_RETURN(const Dataset* d, ctx.cache->Get(name, ctx.scale));
    const Hierarchy& h = d->hierarchy;

    OnlineOptions options;
    options.num_objects = static_cast<std::size_t>(std::max<std::int64_t>(
        1, EnvInt("AIGS_OBJECTS", ctx.smoke ? 5'000 : 50'000)));
    // RunOnlineLearning requires num_objects to be an exact multiple of
    // block_size; round odd AIGS_OBJECTS values down to fit.
    options.block_size =
        std::max<std::size_t>(1, options.num_objects / 10);
    options.num_objects -= options.num_objects % options.block_size;
    options.num_traces = static_cast<std::size_t>(
        EnvInt("AIGS_TRACES", ctx.smoke ? 1 : 3));
    options.seed = 42;
    AIGS_ASSIGN_OR_RETURN(const OnlineSeries series,
                          RunOnlineLearning(h, d->real_distribution, options));

    ScenarioSpec offline_spec;
    offline_spec.label = std::string("fig4/") + name + "/offline";
    offline_spec.dataset = name;
    offline_spec.scale = ctx.scale;
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult offline,
                          Run(ctx, offline_spec));
    ScenarioSpec wigs_spec = offline_spec;
    wigs_spec.label = std::string("fig4/") + name + "/wigs";
    wigs_spec.policy = "wigs";
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult wigs, Run(ctx, wigs_spec));

    std::printf("%s (%zu objects per trace, %zu traces)\n", name,
                options.num_objects, options.num_traces);
    std::printf("  %-14s %-18s %-18s %s\n", "#objects", "GreedyOnline",
                "GivenRealDist", "WIGS");
    for (std::size_t b = 0; b < series.avg_cost_per_block.size(); ++b) {
      std::printf("  %-14zu %-18s %-18s %s\n", (b + 1) * options.block_size,
                  FormatDouble(series.avg_cost_per_block[b]).c_str(),
                  FormatDouble(offline.expected_cost).c_str(),
                  FormatDouble(wigs.expected_cost).c_str());
    }
    const double last = series.avg_cost_per_block.back();
    std::printf("  final gap to offline greedy: %s%%\n\n",
                FormatDouble((last / offline.expected_cost - 1) * 100, 1)
                    .c_str());
  }
  std::printf("paper shape: online curve decreasing, converging to the "
              "offline greedy line;\nWIGS flat above both.\n");
  return Status::OK();
}

// ---- fig5: Zipf parameter sweep -------------------------------------------

Status SuiteFig5(SuiteContext& ctx) {
  PrintConfig(ctx, "Fig. 5: cost vs. parameter of Zipf distribution");
  const std::vector<double> params =
      ctx.smoke ? std::vector<double>{2.0}
                : std::vector<double>{1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  for (const char* name : {"amazon", "imagenet"}) {
    ScenarioSpec equal_spec;
    equal_spec.label = std::string("fig5/") + name + "/equal";
    equal_spec.dataset = name;
    equal_spec.scale = ctx.scale;
    equal_spec.distribution = "equal";
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult equal, Run(ctx, equal_spec));

    AsciiTable table({"Zipf a", "Greedy", "Equal Pr. (ref)"});
    for (const double a : params) {
      ScenarioSpec spec;
      spec.label = std::string("fig5/") + name + "/zipf_" + FormatDouble(a, 1);
      spec.dataset = name;
      spec.scale = ctx.scale;
      spec.distribution = "zipf:" + FormatDouble(a, 1);
      spec.reps = ctx.reps;
      spec.seed = 3000 + static_cast<std::uint64_t>(a * 10);
      AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
      table.AddRow({FormatDouble(a, 1), FormatDouble(r.expected_cost),
                    FormatDouble(equal.expected_cost)});
    }
    std::printf("%s\n%s\n", name, table.ToString().c_str());
  }
  std::printf("paper shape: greedy cost grows with a and approaches the "
              "equal-probability line.\n");
  return Status::OK();
}

// ---- fig6: running time by target depth -----------------------------------

Status SuiteFig6(SuiteContext& ctx) {
  PrintConfig(ctx, "Fig. 6: running time by target depth");
  const double scale =
      std::min(ctx.scale, ctx.smoke ? 0.02 : 0.15);  // naive is O(n^2 m)
  for (const char* name : {"amazon", "imagenet"}) {
    AIGS_ASSIGN_OR_RETURN(const Dataset* d, ctx.cache->Get(name, scale));
    const Hierarchy& h = d->hierarchy;
    const Distribution& dist = d->real_distribution;

    RuntimeByDepthOptions options;
    options.samples_per_depth = static_cast<std::size_t>(
        EnvInt("AIGS_FIG6_SAMPLES", ctx.smoke ? 2 : 5));
    options.seed = 7;

    // Three tiers: the BFS-rescan reference (the paper's naive baseline),
    // the same definitional greedy on the incremental SplitWeightIndex, and
    // the specialized GreedyTree/GreedyDAG — so the figure measures
    // algorithms, not redundant BFS.
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> naive,
                          MakePolicyFor("greedy_naive:backend=bfs", h, dist));
    const RuntimeByDepthResult naive_times =
        MeasureRuntimeByDepth(*naive, h, options);
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> indexed,
                          MakePolicyFor("greedy_naive", h, dist));
    const RuntimeByDepthResult indexed_times =
        MeasureRuntimeByDepth(*indexed, h, options);
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> fast,
                          MakePolicyFor("greedy", h, dist));
    const RuntimeByDepthResult fast_times =
        MeasureRuntimeByDepth(*fast, h, options);

    AsciiTable table({"depth", "#nodes", "NaiveBfs (ms)", "SplitIndex (ms)",
                      h.is_tree() ? "GreedyTree (ms)" : "GreedyDAG (ms)",
                      "idx speedup", "speedup"});
    for (std::size_t depth = 0; depth < naive_times.avg_millis.size();
         ++depth) {
      if (naive_times.nodes_at_depth[depth] == 0) {
        continue;
      }
      const double naive_ms = naive_times.avg_millis[depth];
      const double indexed_ms = indexed_times.avg_millis[depth];
      const double fast_ms = fast_times.avg_millis[depth];
      table.AddRow({std::to_string(depth),
                    std::to_string(naive_times.nodes_at_depth[depth]),
                    FormatDouble(naive_ms, 3), FormatDouble(indexed_ms, 4),
                    FormatDouble(fast_ms, 4),
                    indexed_ms > 0
                        ? FormatDouble(naive_ms / indexed_ms, 0) + "x"
                        : ">10000x",
                    fast_ms > 0 ? FormatDouble(naive_ms / fast_ms, 0) + "x"
                                : ">10000x"});
    }
    std::printf("%s (n=%zu, %zu samples/depth)\n%s\n", name, h.NumNodes(),
                options.samples_per_depth, table.ToString().c_str());
  }
  std::printf("paper shape: GreedyTree ~3 orders of magnitude faster than "
              "GreedyNaive on the tree;\nGreedyDAG noticeably faster on the "
              "DAG. SplitIndex closes most of the gap while asking\nthe "
              "identical question sequence as NaiveBfs.\n");
  return Status::OK();
}

// ---- caigs: cost-sensitive greedy -----------------------------------------

Status SuiteCaigs(SuiteContext& ctx) {
  PrintConfig(ctx, "CAIGS: cost-sensitive greedy (Definition 9 / Theorem 4)");
  // Example 4 (Fig. 3, c(3)=5): blind 6 vs aware 4.25.
  {
    double costs[2] = {0, 0};
    const char* policies[2] = {"greedy_tree", "cost_sensitive"};
    for (int i = 0; i < 2; ++i) {
      ScenarioSpec spec;
      spec.label = std::string("caigs/example4/") + policies[i];
      spec.dataset = "fig3";
      spec.distribution = "equal";
      spec.policy = policies[i];
      spec.cost_model = "fig3";
      AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
      costs[i] = r.expected_priced_cost;
    }
    std::printf("Example 4 (Fig. 3, c(3)=5): cost-blind greedy %s vs "
                "cost-sensitive greedy %s  (paper: 6 vs 4.25)\n\n",
                FormatDouble(costs[0]).c_str(),
                FormatDouble(costs[1]).c_str());
  }

  // Selection scans all alive candidates per query; cap the scale.
  const double scale = std::min(ctx.scale, ctx.smoke ? 0.03 : 0.12);
  const std::vector<std::uint32_t> ranges =
      ctx.smoke ? std::vector<std::uint32_t>{5}
                : std::vector<std::uint32_t>{2, 5, 10, 20};
  for (const char* name : {"amazon", "imagenet"}) {
    AsciiTable table({"Price range", "Cost-blind greedy",
                      "Cost-sensitive greedy", "Savings"});
    for (const std::uint32_t hi : ranges) {
      const std::string cost_model = "uniform:1:" + std::to_string(hi);
      double blind = 0, aware = 0;
      const struct {
        const char* policy;
        double* out;
      } rows[] = {{"greedy", &blind}, {"cost_sensitive", &aware}};
      for (const auto& row : rows) {
        ScenarioSpec spec;
        spec.label = std::string("caigs/") + name + "/hi" +
                     std::to_string(hi) + "/" + row.policy;
        spec.dataset = name;
        spec.scale = scale;
        spec.policy = row.policy;
        spec.cost_model = cost_model;
        spec.seed = 500 + hi;
        AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
        *row.out = r.expected_priced_cost;
      }
      table.AddRow({"$1-$" + std::to_string(hi), FormatDouble(blind),
                    FormatDouble(aware),
                    FormatDouble((1 - aware / blind) * 100, 1) + "%"});
    }
    std::printf("%s (real distribution, random prices)\n%s\n", name,
                table.ToString().c_str());
  }

  // Arbitrary per-node price vectors (cost=prices:<spec>, the generalized
  // setting of arXiv:2511.06564): one explicit vector reproducing Example 4
  // and one hashed vector at catalog scale. Both are deterministic, so the
  // rows are guarded in the baseline.
  {
    ScenarioSpec spec;
    spec.label = "caigs/prices/example4";
    spec.dataset = "fig3";
    spec.distribution = "equal";
    spec.policy = "cost_sensitive";
    spec.cost_model = "prices:1+1+1+5";
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
    std::printf("Explicit price vector 1+1+1+5 reproduces Example 4: "
                "E[price] = %s (expected 4.25)\n",
                FormatDouble(r.expected_priced_cost).c_str());
  }
  {
    ScenarioSpec spec;
    spec.label = "caigs/prices/amazon";
    spec.dataset = "amazon";
    spec.scale = scale;
    spec.policy = "cost_sensitive";
    spec.cost_model = "prices:hash:1:9";
    spec.seed = 600;
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
    std::printf("Hashed per-node prices $1-$9 on amazon: cost-sensitive "
                "E[price] = %s\n\n",
                FormatDouble(r.expected_priced_cost).c_str());
  }
  return Status::OK();
}

// ---- batched: questions per round -----------------------------------------

Status SuiteBatched(SuiteContext& ctx) {
  PrintConfig(ctx, "Extension: batched questions (§III-E)");
  const double scale = std::min(ctx.scale, ctx.smoke ? 0.02 : 0.05);
  AsciiTable table({"k (questions/round)", "E[questions]", "E[rounds]",
                    "latency saving", "question overhead"});
  double base_questions = 0, base_rounds = 0;
  const std::vector<int> ks =
      ctx.smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (const int k : ks) {
    ScenarioSpec spec;
    spec.label = "batched/k" + std::to_string(k);
    spec.dataset = "amazon";
    spec.scale = scale;
    spec.policy = "batched:k=" + std::to_string(k);
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
    if (k == ks.front()) {
      base_questions = r.expected_reach_queries;
      base_rounds = r.expected_rounds;
    }
    table.AddRow(
        {std::to_string(k), FormatDouble(r.expected_reach_queries),
         FormatDouble(r.expected_rounds),
         FormatDouble((1 - r.expected_rounds / base_rounds) * 100, 1) + "%",
         FormatDouble((r.expected_reach_queries / base_questions - 1) * 100,
                      1) +
             "%"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape: latency (rounds) keeps improving with k but saturates "
              "while the question bill grows.\n");
  return Status::OK();
}

// ---- noise: noisy crowd answers -------------------------------------------

struct NoiseOutcome {
  double accuracy = 0;
  double avg_crowd_answers = 0;
};

NoiseOutcome MeasureNoise(const Policy& policy, const Hierarchy& h,
                          const Distribution& dist, double flip_prob,
                          int votes, bool persistent, std::size_t trials,
                          Rng& rng) {
  const AliasTable sampler(dist);
  std::size_t correct = 0;
  std::uint64_t crowd_answers = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const NodeId target = sampler.Sample(rng);
    ExactOracle exact(h.reach(), target);
    NoisyOracle transient(exact, flip_prob, rng.Fork());
    PersistentNoisyOracle sticky(exact, flip_prob, rng.Fork());
    Oracle& noisy = persistent ? static_cast<Oracle&>(sticky)
                               : static_cast<Oracle&>(transient);
    MajorityVoteOracle voted(noisy, votes);
    auto session = policy.NewSession();
    RunOptions options;
    options.max_questions = 1 << 20;
    const SearchResult r = RunSearch(*session, voted, options);
    correct += r.target == target ? 1 : 0;
    crowd_answers += r.reach_queries * static_cast<std::uint64_t>(votes);
  }
  return {static_cast<double>(correct) / static_cast<double>(trials),
          static_cast<double>(crowd_answers) / static_cast<double>(trials)};
}

Status SuiteNoise(SuiteContext& ctx) {
  PrintConfig(ctx, "Extension: noisy crowd answers (§VII future work)");
  AIGS_ASSIGN_OR_RETURN(
      const Dataset* d,
      ctx.cache->Get("amazon", std::min(ctx.scale, ctx.smoke ? 0.03 : 0.15)));
  const Hierarchy& h = d->hierarchy;
  const Distribution& dist = d->real_distribution;
  AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> greedy,
                        MakePolicyFor("greedy", h, dist));
  const std::size_t trials = static_cast<std::size_t>(
      EnvInt("AIGS_NOISE_TRIALS", ctx.smoke ? 50 : 300));

  AsciiTable table({"Flip prob", "Acc (1 vote)", "Acc (5 votes)",
                    "Acc (5 votes, persistent)", "Answers (5 votes)"});
  Rng rng(77);
  const std::vector<double> flips =
      ctx.smoke ? std::vector<double>{0.0, 0.10}
                : std::vector<double>{0.0, 0.02, 0.05, 0.10, 0.20};
  for (const double flip : flips) {
    const NoiseOutcome single =
        MeasureNoise(*greedy, h, dist, flip, 1, false, trials, rng);
    const NoiseOutcome voted =
        MeasureNoise(*greedy, h, dist, flip, 5, false, trials, rng);
    const NoiseOutcome sticky =
        MeasureNoise(*greedy, h, dist, flip, 5, true, trials, rng);
    table.AddRow({FormatDouble(flip, 2),
                  FormatDouble(single.accuracy * 100, 1) + "%",
                  FormatDouble(voted.accuracy * 100, 1) + "%",
                  FormatDouble(sticky.accuracy * 100, 1) + "%",
                  FormatDouble(voted.avg_crowd_answers, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("takeaway: majority voting buys back accuracy under transient "
              "noise but is powerless\nagainst persistent noise — the §VII "
              "future-work challenge.\n");

  // Scenario rows for the perf trajectory: persistent-noise oracle vs the
  // exact reference on the same greedy policy. These flow into the JSON/CSV
  // sink and the baseline guard (cost and accuracy are deterministic: the
  // per-search noise streams derive from the scenario seed).
  AsciiTable scenario_table(
      {"Oracle", "E[questions]", "Accuracy", "Max cost"});
  const struct {
    const char* label;
    const char* oracle;
  } scenario_rows[] = {{"noise/exact", "exact"},
                       {"noise/persistent-0.05", "persistent:0.05"},
                       {"noise/persistent-0.10", "persistent:0.1"}};
  for (const auto& row : scenario_rows) {
    ScenarioSpec spec;
    spec.label = row.label;
    spec.dataset = "amazon";
    spec.scale = std::min(ctx.scale, ctx.smoke ? 0.03 : 0.15);
    spec.policy = "greedy";
    spec.oracle = row.oracle;
    spec.seed = 1234;
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult result, Run(ctx, spec));
    scenario_table.AddRow({row.oracle, FormatDouble(result.expected_cost),
                           FormatDouble(result.accuracy * 100, 1) + "%",
                           std::to_string(result.max_cost)});
  }
  std::printf("%s\n", scenario_table.ToString().c_str());
  return Status::OK();
}

// ---- worstcase: average vs worst objectives --------------------------------

Status SuiteWorstcase(SuiteContext& ctx) {
  PrintConfig(ctx, "Average-case vs worst-case objectives (Example 2 at "
                   "scale)");
  for (const char* name : {"amazon", "imagenet"}) {
    AsciiTable table({"Algorithm", "E[questions]", "median", "p90", "p99",
                      "max (WIGS objective)"});
    for (const char* policy : {"top_down", "wigs", "greedy"}) {
      ScenarioSpec spec;
      spec.label = std::string("worstcase/") + name + "/" + policy;
      spec.dataset = name;
      spec.scale = ctx.scale;
      spec.policy = policy;
      AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
      table.AddRow({r.policy_name, FormatDouble(r.expected_cost),
                    std::to_string(r.median), std::to_string(r.p90),
                    std::to_string(r.p99), std::to_string(r.max_cost)});
    }
    std::printf("%s\n%s\n", name, table.ToString().c_str());
  }
  std::printf("shape: greedy wins the expectation by a wide margin while "
              "WIGS stays competitive on the worst case.\n");
  return Status::OK();
}

// ---- scaling: cost vs hierarchy size --------------------------------------

Status SuiteScaling(SuiteContext& ctx) {
  PrintConfig(ctx, "Scaling study: expected cost vs hierarchy size");
  const std::vector<double> scales =
      ctx.smoke ? std::vector<double>{0.05}
                : std::vector<double>{0.05, 0.10, 0.20, 0.40};
  for (const char* name : {"amazon", "imagenet"}) {
    AsciiTable table({"#nodes", "TopDown", "MIGS", "WIGS", "Greedy",
                      "Greedy/TopDown"});
    for (const double scale : scales) {
      AIGS_ASSIGN_OR_RETURN(const Dataset* d, ctx.cache->Get(name, scale));
      AIGS_ASSIGN_OR_RETURN(
          const CompetitorCosts c,
          RunCompetitors(ctx, name, scale, "real", 1, 1000,
                         std::string("scaling/") + name + "/" +
                             FormatDouble(scale, 2)));
      table.AddRow({FormatWithCommas(d->hierarchy.NumNodes()),
                    FormatDouble(c.top_down), FormatDouble(c.migs),
                    FormatDouble(c.wigs), FormatDouble(c.greedy),
                    FormatDouble(c.greedy / c.top_down * 100, 1) + "%"});
    }
    std::printf("%s (real distribution)\n%s\n", name,
                table.ToString().c_str());
  }
  std::printf("shape: greedy's share of the TopDown cost shrinks as the "
              "hierarchy grows.\n");
  return Status::OK();
}

// ---- ablation: greedy design choices --------------------------------------

Status SuiteAblation(SuiteContext& ctx) {
  PrintConfig(ctx, "Ablations: greedy design choices (§IV)");
  const double scale = std::min(ctx.scale, ctx.smoke ? 0.03 : 0.1);

  // Rounding (Eq. 1) on/off.
  {
    AsciiTable table({"Policy", "Raw weights", "Rounded weights (Eq. 1)"});
    const struct {
      const char* dataset;
      const char* raw;
      const char* rounded;
      const char* label;
    } rows[] = {
        {"amazon", "greedy_tree", "greedy_tree:rounded=true", "GreedyTree"},
        {"imagenet", "greedy_dag:rounded=false", "greedy_dag", "GreedyDAG"}};
    for (const auto& row : rows) {
      double costs[2] = {0, 0};
      const char* policies[2] = {row.raw, row.rounded};
      for (int i = 0; i < 2; ++i) {
        ScenarioSpec spec;
        spec.label = std::string("ablation/rounding/") + row.dataset + "/" +
                     (i == 0 ? "raw" : "rounded");
        spec.dataset = row.dataset;
        spec.scale = scale;
        spec.policy = policies[i];
        AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
        costs[i] = r.expected_cost;
      }
      table.AddRow({row.label, FormatDouble(costs[0]),
                    FormatDouble(costs[1])});
    }
    std::printf("[rounding]\n%s\n", table.ToString().c_str());
  }

  // Selection-time ablations (child scan, dominance pruning, overlays).
  AIGS_ASSIGN_OR_RETURN(const Dataset* amazon,
                        ctx.cache->Get("amazon", scale));
  AIGS_ASSIGN_OR_RETURN(const Dataset* imagenet,
                        ctx.cache->Get("imagenet", scale));
  const std::size_t fast_samples = ctx.smoke ? 100 : 2000;
  const std::size_t naive_samples = ctx.smoke ? 3 : 10;
  {
    const Hierarchy& h = amazon->hierarchy;
    const Distribution& dist = amazon->real_distribution;
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> linear,
                          MakePolicyFor("greedy_tree", h, dist));
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> heap,
                          MakePolicyFor("greedy_tree:scan=heap", h, dist));
    AsciiTable table({"Child scan", "Avg search (ms)"});
    table.AddRow({"linear  O(nhd)",
                  FormatDouble(AvgSearchMillis(*linear, h, dist, fast_samples),
                               4)});
    table.AddRow({"lazy heap O(nh log d)",
                  FormatDouble(AvgSearchMillis(*heap, h, dist, fast_samples),
                               4)});
    std::printf("[child scan, amazon]\n%s\n", table.ToString().c_str());
  }
  {
    const Hierarchy& h = imagenet->hierarchy;
    const Distribution& dist = imagenet->real_distribution;
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> pruned,
                          MakePolicyFor("greedy_dag", h, dist));
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> exhaustive,
                          MakePolicyFor("greedy_dag:prune=false", h, dist));
    AsciiTable table({"Selection BFS", "Avg search (ms)"});
    const std::size_t samples = ctx.smoke ? 50 : 500;
    table.AddRow({"dominance-pruned (Alg. 6)",
                  FormatDouble(AvgSearchMillis(*pruned, h, dist, samples),
                               4)});
    table.AddRow({"exhaustive",
                  FormatDouble(AvgSearchMillis(*exhaustive, h, dist, samples),
                               4)});
    std::printf("[dominance pruning, imagenet]\n%s\n",
                table.ToString().c_str());
  }
  for (const Dataset* d : {amazon, imagenet}) {
    const Hierarchy& h = d->hierarchy;
    const Distribution& dist = d->real_distribution;
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> fast,
                          MakePolicyFor("greedy", h, dist));
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> indexed,
                          MakePolicyFor("greedy_naive", h, dist));
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> naive,
                          MakePolicyFor("greedy_naive:backend=bfs", h, dist));
    AsciiTable table({"Implementation", "Avg search (ms)"});
    table.AddRow(
        {fast->name() + " (incremental index + session overlay)",
         FormatDouble(AvgSearchMillis(*fast, h, dist,
                                      std::min<std::size_t>(fast_samples,
                                                            1000)),
                      4)});
    table.AddRow(
        {"GreedyNaive (SplitWeightIndex selection)",
         FormatDouble(AvgSearchMillis(*indexed, h, dist,
                                      std::min<std::size_t>(fast_samples,
                                                            1000)),
                      4)});
    table.AddRow({"GreedyNaive[bfs] (Algorithm 2, full rescans)",
                  FormatDouble(AvgSearchMillis(*naive, h, dist,
                                               naive_samples),
                               3)});
    std::printf("[overlay vs naive, %s]\n%s\n", d->name.c_str(),
                table.ToString().c_str());
  }
  return Status::OK();
}

// ---- approx_ratio: empirical ratios vs brute-force optimum ----------------

struct RatioStats {
  double worst = 0;
  double sum = 0;
  std::size_t count = 0;

  void Add(double ratio) {
    worst = std::max(worst, ratio);
    sum += ratio;
    ++count;
  }
  double Mean() const {
    return count == 0 ? 0 : sum / static_cast<double>(count);
  }
};

Status SuiteApproxRatio(SuiteContext& ctx) {
  PrintConfig(ctx, "Empirical approximation ratios vs brute-force optimum");
  const std::size_t rounds = static_cast<std::size_t>(
      EnvInt("AIGS_APPROX_ROUNDS", ctx.smoke ? 20 : 120));

  Rng rng(2022);
  RatioStats tree_stats, dag_stats, equal_stats, caigs_stats;
  EvalOptions eval_options;
  eval_options.threads = 1;  // instances are tiny; skip pool overhead

  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t n = 2 + rng.UniformInt(13);

    {  // Tree family: GreedyTree vs optimum.
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomTree(n, g));
      AIGS_RETURN_NOT_OK(h.status());
      std::vector<Weight> weights(h->NumNodes());
      for (auto& x : weights) {
        x = 1 + g.UniformInt(99);
      }
      AIGS_ASSIGN_OR_RETURN(const Distribution dist,
                            Distribution::FromWeights(weights));
      AIGS_ASSIGN_OR_RETURN(const double opt, OptimalExpectedCost(*h, dist));
      AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> greedy,
                            MakePolicyFor("greedy_tree", *h, dist));
      if (opt > 0) {
        tree_stats.Add(
            EvaluateExact(*greedy, *h, dist, eval_options).expected_cost /
            opt);
      }
    }
    {  // DAG family: GreedyDAG (rounded) vs optimum.
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomDag(std::max<std::size_t>(n, 3), g, 0.5));
      AIGS_RETURN_NOT_OK(h.status());
      std::vector<Weight> weights(h->NumNodes());
      for (auto& x : weights) {
        x = 1 + g.UniformInt(99);
      }
      AIGS_ASSIGN_OR_RETURN(const Distribution dist,
                            Distribution::FromWeights(weights));
      AIGS_ASSIGN_OR_RETURN(const double opt, OptimalExpectedCost(*h, dist));
      AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> greedy,
                            MakePolicyFor("greedy_dag", *h, dist));
      if (opt > 0) {
        dag_stats.Add(
            EvaluateExact(*greedy, *h, dist, eval_options).expected_cost /
            opt);
      }
    }
    {  // Equal-probability family (Theorem 3's setting).
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomDag(std::max<std::size_t>(n, 3), g, 0.4));
      AIGS_RETURN_NOT_OK(h.status());
      const Distribution dist = EqualDistribution(h->NumNodes());
      AIGS_ASSIGN_OR_RETURN(const double opt, OptimalExpectedCost(*h, dist));
      AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Policy> greedy,
                            MakePolicyFor("greedy_dag", *h, dist));
      if (opt > 0) {
        equal_stats.Add(
            EvaluateExact(*greedy, *h, dist, eval_options).expected_cost /
            opt);
      }
    }
    {  // CAIGS family: cost-sensitive greedy vs priced optimum.
      Rng g(rng.Next());
      auto h = Hierarchy::Build(RandomTree(n, g));
      AIGS_RETURN_NOT_OK(h.status());
      std::vector<Weight> weights(h->NumNodes());
      for (auto& x : weights) {
        x = 1 + g.UniformInt(30);
      }
      AIGS_ASSIGN_OR_RETURN(const Distribution dist,
                            Distribution::FromWeights(weights));
      const CostModel costs = CostModel::UniformRandom(h->NumNodes(), 1, 8, g);
      AIGS_ASSIGN_OR_RETURN(const double opt,
                            OptimalExpectedCost(*h, dist, &costs));
      AIGS_ASSIGN_OR_RETURN(
          const std::unique_ptr<Policy> greedy,
          MakePolicyFor("cost_sensitive", *h, dist, &costs));
      EvalOptions priced_options = eval_options;
      priced_options.cost_model = &costs;
      if (opt > 0) {
        caigs_stats.Add(EvaluateExact(*greedy, *h, dist, priced_options)
                            .expected_priced_cost /
                        opt);
      }
    }
  }

  AsciiTable table({"Family", "Mean ratio", "Worst ratio", "Theorem bound"});
  table.AddRow({"GreedyTree on trees (Thm 2)",
                FormatDouble(tree_stats.Mean(), 4),
                FormatDouble(tree_stats.worst, 4), "1.618 ((1+sqrt(5))/2)"});
  table.AddRow({"GreedyDAG on DAGs (Thm 1)", FormatDouble(dag_stats.Mean(), 4),
                FormatDouble(dag_stats.worst, 4), "2(1+3 ln n)"});
  table.AddRow({"GreedyDAG, equal probs (Thm 3)",
                FormatDouble(equal_stats.Mean(), 4),
                FormatDouble(equal_stats.worst, 4), "O(log n / log log n)"});
  table.AddRow({"Cost-sensitive on CAIGS (Thm 4)",
                FormatDouble(caigs_stats.Mean(), 4),
                FormatDouble(caigs_stats.worst, 4), "2(1+3 ln n)"});
  std::printf("%s\n", table.ToString().c_str());
  if (tree_stats.worst > 1.6180339887498949 + 1e-9) {
    return Status::Internal("tree worst ratio exceeds the golden-ratio bound");
  }
  std::printf("tree worst ratio within the golden-ratio bound: OK\n");
  return Status::OK();
}

// ---- example2: vehicle hierarchy ------------------------------------------

Status SuiteExample2(SuiteContext& ctx) {
  PrintConfig(ctx, "Example 2: vehicle hierarchy, 100 objects");
  VehicleNodes nodes;
  (void)BuildVehicleHierarchy(&nodes);  // only to learn the node ids

  const auto order_spec = [](std::initializer_list<NodeId> order) {
    std::string joined;
    for (const NodeId v : order) {
      if (!joined.empty()) {
        joined += '+';
      }
      joined += std::to_string(v);
    }
    return joined;
  };
  const std::string wigs_order =
      order_spec({nodes.nissan, nodes.maxima, nodes.sentra, nodes.car,
                  nodes.honda, nodes.mercedes});
  const std::string average_order =
      order_spec({nodes.maxima, nodes.sentra, nodes.nissan, nodes.car,
                  nodes.honda, nodes.mercedes});

  AsciiTable table({"Policy", "Total cost (100 objects)", "Average cost",
                    "Worst case"});
  const struct {
    std::string policy;
    const char* label;
  } rows[] = {
      {"scripted:order=" + wigs_order + ",label=WIGS-optimal",
       "example2/wigs_optimal"},
      {"scripted:order=" + average_order + ",label=average-aware",
       "example2/average_aware"},
      {"greedy_tree", "example2/greedy"}};
  for (const auto& row : rows) {
    ScenarioSpec spec;
    spec.label = row.label;
    spec.dataset = "vehicle";
    spec.policy = row.policy;
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
    table.AddRow({r.policy_name, FormatDouble(r.expected_cost * 100, 0),
                  FormatDouble(r.expected_cost),
                  std::to_string(r.max_cost)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper: WIGS-optimal total 260 (worst case 4); average-aware "
              "total 204 (worst case 6).\n\n");

  if (!ctx.smoke) {
    AIGS_ASSIGN_OR_RETURN(const Dataset* d, ctx.cache->Get("vehicle", 1.0));
    AIGS_ASSIGN_OR_RETURN(
        const std::unique_ptr<Policy> greedy,
        MakePolicyFor("greedy_tree", d->hierarchy, d->real_distribution));
    AIGS_ASSIGN_OR_RETURN(const DecisionTree tree,
                          DecisionTree::Build(*greedy, d->hierarchy));
    std::printf("greedy decision tree (Definition 6):\n%s\n",
                tree.ToDot(d->hierarchy).c_str());
  }
  return Status::OK();
}

// ---- plan_cache: warm-prefix question-plan throughput ----------------------

/// Replays one engine session to `depth` answers for `target` (exact
/// oracle); returns the id, or kInvalidSession when the search finished
/// early (session closed).
constexpr SessionId kInvalidSession = 0;

StatusOr<SessionId> OpenAtPrefix(Engine& engine, const std::string& spec,
                                 const Hierarchy& h, NodeId target,
                                 std::size_t depth) {
  AIGS_ASSIGN_OR_RETURN(const SessionId id, engine.Open(spec));
  ExactOracle oracle(h.reach(), target);
  for (std::size_t d = 0; d < depth; ++d) {
    AIGS_ASSIGN_OR_RETURN(const Query q, engine.Ask(id));
    if (q.kind == Query::Kind::kDone) {
      AIGS_RETURN_NOT_OK(engine.Close(id));
      return kInvalidSession;
    }
    AIGS_RETURN_NOT_OK(engine.Answer(id, AnswerFromOracle(q, oracle)));
  }
  return id;
}

/// Mean nanoseconds of one Engine::Ask at shared transcript prefixes of
/// depth 0..depths−1: `per_depth` sessions are replayed to each depth
/// (untimed — this is also what warms the trie), then exactly one Ask per
/// session is timed. On an uncached engine that Ask runs the pure planner;
/// on a warm engine it is one trie lookup.
StatusOr<double> TimedAskNanos(Engine& engine, const std::string& spec,
                               const Hierarchy& h, NodeId target,
                               std::size_t depths, std::size_t per_depth) {
  double total_ms = 0;
  std::size_t timed = 0;
  for (std::size_t depth = 0; depth < depths; ++depth) {
    std::vector<SessionId> ids;
    ids.reserve(per_depth);
    for (std::size_t s = 0; s < per_depth; ++s) {
      AIGS_ASSIGN_OR_RETURN(const SessionId id,
                            OpenAtPrefix(engine, spec, h, target, depth));
      if (id != kInvalidSession) {
        ids.push_back(id);
      }
    }
    // Replaying stops one Ask short of `depth`, so the question AT the
    // timed depth has never been planned; issue one untimed Ask so a warm
    // engine's timed loop measures pure hits (a cold engine plans every
    // time regardless — its one extra plan here is untimed too).
    if (!ids.empty()) {
      AIGS_RETURN_NOT_OK(engine.Ask(ids.front()).status());
      AIGS_RETURN_NOT_OK(engine.Close(ids.front()));
      ids.erase(ids.begin());
    }
    WallTimer timer;
    for (const SessionId id : ids) {
      AIGS_RETURN_NOT_OK(engine.Ask(id).status());
    }
    total_ms += timer.ElapsedMillis();
    timed += ids.size();
    for (const SessionId id : ids) {
      AIGS_RETURN_NOT_OK(engine.Close(id));
    }
  }
  if (timed == 0) {
    return 0.0;
  }
  return total_ms * 1e6 / static_cast<double>(timed);
}

/// Builds an engine serving one policy spec over a dataset's hierarchy and
/// real distribution (uniform random prices for cost-aware specs).
StatusOr<std::unique_ptr<Engine>> MakeSuiteEngine(const Dataset& dataset,
                                                  const std::string& spec,
                                                  bool cached) {
  EngineOptions options;
  options.plan_cache.enabled = cached;
  auto engine = std::make_unique<Engine>(options);
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(dataset.hierarchy);
  config.distribution = dataset.real_distribution;
  if (spec.rfind("cost_sensitive", 0) == 0) {
    Rng rng(7);
    config.cost_model = std::make_shared<CostModel>(
        CostModel::UniformRandom(dataset.hierarchy.NumNodes(), 1, 10, rng));
  }
  config.policy_specs = {spec};
  AIGS_RETURN_NOT_OK(engine->Publish(std::move(config)).status());
  return engine;
}

/// The PR-4 hot path: a million sessions answering the same first few
/// questions should run the planner once per distinct prefix, not once per
/// session. Two measurements:
///  * guarded scenario rows — service-path exact evaluation with the plan
///    cache on and off; cost aggregates are pinned by the baseline to the
///    bit-identical values of both rows (cached == uncached == in-process),
///    and the cached row reports its measured hit rate in the JSON sink;
///  * the warm-prefix table — mean wall time of exactly one Engine::Ask at
///    shared prefixes (depths 0–3), uncached planner vs warm trie hit.
Status SuitePlanCache(SuiteContext& ctx) {
  PrintConfig(ctx, "plan_cache: warm-prefix question plans (PR 4)");

  const struct {
    const char* dataset;
    const char* policy;
    const char* cost;
  } rows[] = {{"amazon", "greedy", "unit"},
              {"amazon", "greedy_naive", "unit"},
              {"amazon", "batched:k=4", "unit"},
              {"amazon", "cost_sensitive", "uniform:1:10"},
              {"imagenet", "greedy", "unit"},
              {"imagenet", "greedy_naive", "unit"}};

  AsciiTable eval_table({"Scenario", "E[questions]", "Cache", "Hit rate",
                         "Wall ms"});
  for (const auto& row : rows) {
    for (const bool cached : {false, true}) {
      ScenarioSpec spec;
      spec.label = std::string("plan_cache/") + row.dataset + "/" +
                   row.policy + (cached ? "/cached" : "/uncached");
      spec.dataset = row.dataset;
      spec.scale = ctx.scale;
      spec.policy = row.policy;
      spec.cost_model = row.cost;
      spec.service = true;
      spec.plan_cache = cached;
      AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
      eval_table.AddRow({r.spec.label, FormatDouble(r.expected_cost),
                         cached ? "on" : "off",
                         cached ? FormatDouble(100.0 * r.cache_hit_rate, 1) + "%"
                                : "-",
                         FormatDouble(r.wall_ms, 2)});
    }
  }
  std::printf("%s\n", eval_table.ToString().c_str());
  std::printf("cached and uncached rows are bit-identical in every cost "
              "aggregate (policies are pure planners; the baseline guard "
              "pins both).\n\n");

  // Warm-prefix Ask latency. The deepest-weighted target keeps every
  // session alive through the measured prefix depths.
  const std::size_t depths = 4;
  const std::size_t per_depth = ctx.smoke ? 64 : 256;
  AsciiTable ask_table({"Dataset", "Policy", "Uncached Ask (ns)",
                        "Warm Ask (ns)", "Speedup", "Hit rate"});
  for (const auto& row : rows) {
    AIGS_ASSIGN_OR_RETURN(const Dataset* d,
                          ctx.cache->Get(row.dataset, ctx.scale));
    const NodeId target =
        static_cast<NodeId>(d->hierarchy.NumNodes() - 1);
    AIGS_ASSIGN_OR_RETURN(
        const std::unique_ptr<Engine> cold,
        MakeSuiteEngine(*d, row.policy, /*cached=*/false));
    AIGS_ASSIGN_OR_RETURN(
        const double cold_ns,
        TimedAskNanos(*cold, row.policy, d->hierarchy, target, depths,
                      per_depth));
    AIGS_ASSIGN_OR_RETURN(const std::unique_ptr<Engine> warm,
                          MakeSuiteEngine(*d, row.policy, /*cached=*/true));
    AIGS_ASSIGN_OR_RETURN(
        const double warm_ns,
        TimedAskNanos(*warm, row.policy, d->hierarchy, target, depths,
                      per_depth));
    const PlanCacheStats stats = warm->Stats().plan_cache;
    ask_table.AddRow(
        {row.dataset, row.policy, FormatDouble(cold_ns, 0),
         FormatDouble(warm_ns, 0),
         warm_ns > 0 ? FormatDouble(cold_ns / warm_ns, 1) + "x" : "-",
         FormatDouble(100.0 * stats.hit_rate(), 1) + "%"});
  }
  std::printf("%s\n", ask_table.ToString().c_str());
  std::printf("timed: exactly one Ask per session at shared prefixes "
              "(depths 0-%zu, %zu sessions/depth). Uncached runs the "
              "planner; warm is one lock-striped trie lookup.\n",
              depths - 1, per_depth);
  return Status::OK();
}

// ---- epoch_lifecycle: migration + warm publish + rolling keys (PR 5) -------

/// Replays one engine session to `depth` answers for `target`; leaves it
/// IDLE (answered, no resolved pending) so the migration sweep may pick it
/// up. Returns kInvalidSession when the search finished early.
StatusOr<SessionId> OpenIdleAtPrefix(Engine& engine, const std::string& spec,
                                     const Hierarchy& h, NodeId target,
                                     std::size_t depth) {
  AIGS_ASSIGN_OR_RETURN(const SessionId id, engine.Open(spec));
  ExactOracle oracle(h.reach(), target);
  for (std::size_t d = 0; d < depth; ++d) {
    AIGS_ASSIGN_OR_RETURN(const Query q, engine.Ask(id));
    if (q.kind == Query::Kind::kDone) {
      AIGS_RETURN_NOT_OK(engine.Close(id));
      return kInvalidSession;
    }
    AIGS_RETURN_NOT_OK(engine.Answer(id, AnswerFromOracle(q, oracle)));
  }
  return id;
}

StatusOr<std::unique_ptr<Engine>> MakeLifecycleEngine(bool warm,
                                                      bool sweep) {
  EngineOptions options;
  options.plan_cache.warm_publish = warm;
  options.migration.sweep_on_publish = sweep;
  // These benches time the inline seeding/sweep paths and read trie stats
  // right after Publish; the background worker would race both.
  options.drain.background = false;
  return std::make_unique<Engine>(options);
}

Status PublishLifecycleEpoch(Engine& engine, const Dataset& dataset,
                             const Distribution& dist) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(dataset.hierarchy);
  config.distribution = dist;
  config.policy_specs = {"greedy"};
  return engine.Publish(std::move(config)).status();
}

/// (a) Migration sweep throughput: idle sessions parked at shared prefixes
/// on epoch 1, weights shift, the sweep replays everyone onto epoch 2.
Status LifecycleMigrationThroughput(SuiteContext& ctx, const Dataset& d) {
  const Hierarchy& h = d.hierarchy;
  const std::size_t kSessions = ctx.smoke ? 128 : 1024;
  const std::size_t kDepth = 4;

  AIGS_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                        MakeLifecycleEngine(/*warm=*/true, /*sweep=*/false));
  AIGS_RETURN_NOT_OK(
      PublishLifecycleEpoch(*engine, d, d.real_distribution));
  const AliasTable sampler(d.real_distribution);
  Rng rng(5005);
  std::size_t parked = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    AIGS_ASSIGN_OR_RETURN(
        const SessionId id,
        OpenIdleAtPrefix(*engine, "greedy", h, sampler.Sample(rng), kDepth));
    parked += id != kInvalidSession ? 1 : 0;
  }

  // Shift the weights (an online-learning style update) and sweep.
  Rng shift_rng(6006);
  const Distribution shifted =
      ZipfRandomDistribution(h.NumNodes(), 2.0, shift_rng);
  AIGS_RETURN_NOT_OK(PublishLifecycleEpoch(*engine, d, shifted));
  WallTimer timer;
  const MigrateSweepStats sweep = engine->MigrateIdleSessions();
  const double millis = timer.ElapsedMillis();

  AsciiTable table({"Idle sessions", "Migrated", "Failed", "Divergent steps",
                    "Sweep ms", "Sessions/s"});
  table.AddRow({std::to_string(parked), std::to_string(sweep.migrated),
                std::to_string(sweep.failed),
                std::to_string(sweep.divergent_steps),
                FormatDouble(millis, 2),
                millis > 0 ? FormatWithCommas(static_cast<std::uint64_t>(
                                 sweep.migrated * 1000.0 / millis))
                           : "-"});
  std::printf("[migration sweep: %s, depth-%zu prefixes, real -> zipf:2 "
              "weights]\n%s\n",
              d.name.c_str(), kDepth, table.ToString().c_str());
  return Status::OK();
}

/// (b) Post-publish cold start: first-asks hit rate with warm seeding
/// on vs off. The first fresh session after a publish is the pure
/// cold-start probe; the aggregate adds the sessions that follow it.
Status LifecycleWarmPublish(SuiteContext& ctx, const Dataset& d) {
  const Hierarchy& h = d.hierarchy;
  const std::size_t kHeatSessions = ctx.smoke ? 24 : 128;
  const std::size_t kFreshSessions = ctx.smoke ? 16 : 64;
  const std::size_t kDepth = 4;

  AsciiTable table({"Warm publish", "Seeded entries", "First-session hits",
                    "First-session rate", "Fresh hit rate"});
  double rates[2] = {0, 0};
  for (const bool warm : {false, true}) {
    AIGS_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                          MakeLifecycleEngine(warm, /*sweep=*/false));
    AIGS_RETURN_NOT_OK(
        PublishLifecycleEpoch(*engine, d, d.real_distribution));
    const AliasTable sampler(d.real_distribution);
    Rng rng(7007);
    for (std::size_t i = 0; i < kHeatSessions; ++i) {
      AIGS_ASSIGN_OR_RETURN(const SessionId id,
                            OpenIdleAtPrefix(*engine, "greedy", h,
                                             sampler.Sample(rng), kDepth));
      if (id != kInvalidSession) {
        AIGS_RETURN_NOT_OK(engine->Close(id));
      }
    }
    // Publish the same weights again: without warm seeding the new trie
    // starts empty and the first post-publish asks all run the planner.
    AIGS_RETURN_NOT_OK(
        PublishLifecycleEpoch(*engine, d, d.real_distribution));
    const std::shared_ptr<PlanCache> trie = engine->plan_cache();
    const PlanCacheStats seeded = trie->stats();

    Rng fresh_rng(7007);  // same target stream as the heat phase
    PlanCacheStats before_first = trie->stats();
    AIGS_ASSIGN_OR_RETURN(
        const SessionId first,
        OpenIdleAtPrefix(*engine, "greedy", h, sampler.Sample(fresh_rng),
                         kDepth));
    const PlanCacheStats after_first = trie->stats();
    if (first != kInvalidSession) {
      AIGS_RETURN_NOT_OK(engine->Close(first));
    }
    for (std::size_t i = 1; i < kFreshSessions; ++i) {
      AIGS_ASSIGN_OR_RETURN(
          const SessionId id,
          OpenIdleAtPrefix(*engine, "greedy", h, sampler.Sample(fresh_rng),
                           kDepth));
      if (id != kInvalidSession) {
        AIGS_RETURN_NOT_OK(engine->Close(id));
      }
    }
    const PlanCacheStats done = trie->stats();
    const std::uint64_t first_hits = after_first.hits - before_first.hits;
    const std::uint64_t first_asks = first_hits + after_first.misses -
                                     before_first.misses;
    const std::uint64_t fresh_hits = done.hits - before_first.hits;
    const std::uint64_t fresh_asks = fresh_hits + done.misses -
                                     before_first.misses;
    const double rate = fresh_asks == 0
                            ? 0.0
                            : static_cast<double>(fresh_hits) /
                                  static_cast<double>(fresh_asks);
    rates[warm ? 1 : 0] = rate;
    table.AddRow({warm ? "on" : "off",
                  std::to_string(seeded.seeded_inserts),
                  std::to_string(first_hits) + "/" +
                      std::to_string(first_asks),
                  first_asks > 0
                      ? FormatDouble(100.0 * static_cast<double>(first_hits) /
                                         static_cast<double>(first_asks),
                                     1) + "%"
                      : "-",
                  FormatDouble(100.0 * rate, 1) + "%"});
  }
  std::printf("[post-publish cold start: %s, %zu heat + %zu fresh "
              "sessions at depth %zu]\n%s\n",
              d.name.c_str(), kHeatSessions, kFreshSessions, kDepth,
              table.ToString().c_str());
  if (rates[1] <= rates[0]) {
    return Status::Internal(
        "warm publish did not raise the post-publish hit rate (" +
        FormatDouble(rates[1], 4) + " vs " + FormatDouble(rates[0], 4) +
        ")");
  }
  std::printf("warm=on first-asks hit rate strictly above warm=off: OK\n\n");
  return Status::OK();
}

/// Faithful re-creation of the PR-4 string-key cache stripe (lock + flat
/// hash map + LRU splice), so the micro row below isolates the one thing
/// that changed: hashing an O(depth) concatenated key vs one interned id.
struct LegacyStringStripe {
  struct Entry {
    Query query;
    std::list<const std::string*>::iterator lru_it;
  };
  std::mutex mutex;
  std::unordered_map<std::string, Entry> entries;
  std::list<const std::string*> lru;
  std::atomic<std::uint64_t> hits{0};

  void Insert(const std::string& key, const Query& query) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto [it, inserted] = entries.try_emplace(key);
    it->second.query = query;
    lru.push_front(&it->first);
    it->second.lru_it = lru.begin();
  }
  std::optional<Query> Lookup(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = entries.find(key);
    if (it == entries.end()) {
      return std::nullopt;
    }
    hits.fetch_add(1, std::memory_order_relaxed);
    lru.splice(lru.begin(), lru, it->second.lru_it);
    return it->second.query;
  }
};

/// (c) Rolling plan keys: per-Ask key cost of the interned PlanPrefixId
/// trie vs the PR-4 O(depth) string key, across transcript depths.
Status LifecycleRollingKeys(SuiteContext& ctx) {
  const std::size_t kLookups = ctx.smoke ? 200'000 : 2'000'000;
  AsciiTable table({"Depth", "String key bytes", "Re-encoded key (ns)",
                    "Interned id (ns)", "Speedup"});
  for (const std::size_t depth : {4u, 16u, 64u, 256u}) {
    // The PR-4 scheme: the session carries the concatenated step lines and
    // every Ask hashes all O(depth) bytes of it under the stripe lock.
    LegacyStringStripe flat;
    std::string string_key = "greedy\n";
    PlanCacheOptions options;
    options.max_depth = depth + 1;
    PlanCache cache(options);
    PlanPrefixId id = cache.RootFor("greedy");
    for (std::size_t i = 0; i < depth; ++i) {
      TranscriptStep step;
      step.kind = Query::Kind::kReach;
      step.nodes = {static_cast<NodeId>(i)};
      step.yes = (i & 1) != 0;
      std::string edge;
      SessionCodec::AppendStepKey(step, &edge);
      string_key += edge;
      id = cache.Advance(id, edge);
    }
    flat.Insert(string_key, Query::ReachQuery(1));
    cache.Insert(id, Query::ReachQuery(1));

    WallTimer old_timer;
    std::size_t sink = 0;
    for (std::size_t i = 0; i < kLookups; ++i) {
      sink += flat.Lookup(string_key).has_value() ? 1 : 0;
    }
    const double old_ns = old_timer.ElapsedMillis() * 1e6 /
                          static_cast<double>(kLookups);
    WallTimer new_timer;
    for (std::size_t i = 0; i < kLookups; ++i) {
      sink += cache.Lookup(id).has_value() ? 1 : 0;
    }
    const double new_ns = new_timer.ElapsedMillis() * 1e6 /
                          static_cast<double>(kLookups);
    AIGS_CHECK(sink == 2 * kLookups);
    table.AddRow({std::to_string(depth), std::to_string(string_key.size()),
                  FormatDouble(old_ns, 1), FormatDouble(new_ns, 1),
                  new_ns > 0 ? FormatDouble(old_ns / new_ns, 1) + "x"
                             : "-"});
  }
  std::printf("[rolling plan keys: one key probe per Ask, %zu probes "
              "per row]\n%s\n",
              kLookups, table.ToString().c_str());
  std::printf("shape: the re-encoded string key scales with depth; the "
              "interned id stays flat (hash of one u64 + stripe lock).\n");
  return Status::OK();
}

/// Nearest-rank percentile (q in (0, 1]) of a sample, copied and sorted.
double NearestRankMs(std::vector<double> samples, double q) {
  return NearestRank(std::move(samples), q);
}

/// (d) The PR-6 publish-latency SLO: with the background drain worker,
/// Publish is the O(1) snapshot swap — its latency must stay FLAT as the
/// live-session count grows, while the inline (PR-5) publish pays the
/// whole sweep on the publishing thread and scales linearly. Guarded
/// suite-internally (Status::Internal), never via wall time in the
/// baseline file.
Status LifecyclePublishLatency(SuiteContext& ctx, const Dataset& d) {
  const std::vector<std::size_t> counts =
      ctx.smoke ? std::vector<std::size_t>{1'000, 8'000}
                : std::vector<std::size_t>{1'000, 100'000, 1'000'000};
  const std::size_t kReps = 9;

  AsciiTable table({"Sessions", "Mode", "Publish p50 ms", "Publish p99 ms",
                    "Fully drained ms"});
  // p50 keyed by (background, session count) for the gates below.
  std::map<std::pair<bool, std::size_t>, double> p50s;
  for (const std::size_t count : counts) {
    for (const bool background : {false, true}) {
      EngineOptions options;
      options.drain.background = background;
      Engine engine(options);
      AIGS_RETURN_NOT_OK(
          PublishLifecycleEpoch(engine, d, d.real_distribution));
      for (std::size_t i = 0; i < count; ++i) {
        AIGS_RETURN_NOT_OK(engine.Open("greedy").status());
      }
      std::vector<double> publish_ms, drained_ms;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        // Every rep re-migrates the full session population one epoch
        // forward, so each timed Publish faces identical drain work.
        WallTimer timer;
        AIGS_RETURN_NOT_OK(
            PublishLifecycleEpoch(engine, d, d.real_distribution));
        publish_ms.push_back(timer.ElapsedMillis());
        engine.WaitForDrain();
        drained_ms.push_back(timer.ElapsedMillis());
      }
      const double p50 = NearestRankMs(publish_ms, 0.50);
      const double p99 = NearestRankMs(publish_ms, 0.99);
      const double drained = NearestRankMs(drained_ms, 0.50);
      p50s[{background, count}] = p50;
      table.AddRow({FormatWithCommas(count),
                    background ? "background" : "inline",
                    FormatDouble(p50, 3), FormatDouble(p99, 3),
                    FormatDouble(drained, 3)});
      if (ctx.results != nullptr) {
        // Synthetic guard rows: all cost aggregates are zero by
        // construction (stable everywhere); the latency lives in wall_ms,
        // which the baseline guard never compares.
        ScenarioResult row;
        row.spec.label = "epoch_lifecycle/publish_latency/" +
                         std::string(background ? "background" : "inline") +
                         "/" + d.name + "/" + std::to_string(count);
        row.spec.dataset = d.name;
        row.spec.policy = "greedy";
        row.spec.service = true;
        row.policy_name = "greedy";
        row.nodes = d.hierarchy.NumNodes();
        row.wall_ms = p50;
        ctx.results->push_back(row);
      }
    }
  }
  std::printf("[publish latency: %s, %zu timed publishes per cell, idle "
              "sessions at depth 0]\n%s\n",
              d.name.c_str(), kReps, table.ToString().c_str());

  // The SLO gates. Flatness: the background swap at the largest session
  // count must stay within 2x of the smallest (plus 1ms absolute slack —
  // the swap is microseconds, timer noise is not). Separation: the inline
  // publish pays the sweep for the whole population, so at the largest
  // count it cannot undercut the O(1) swap.
  const double bg_min = p50s[{true, counts.front()}];
  const double bg_max = p50s[{true, counts.back()}];
  const double inline_max = p50s[{false, counts.back()}];
  if (bg_max > 2.0 * bg_min + 1.0) {
    return Status::Internal(
        "publish latency SLO violated: background p50 grew from " +
        FormatDouble(bg_min, 3) + "ms at " +
        std::to_string(counts.front()) + " sessions to " +
        FormatDouble(bg_max, 3) + "ms at " + std::to_string(counts.back()) +
        " — the swap is no longer O(1) in the session count");
  }
  if (inline_max < 0.8 * bg_max) {
    return Status::Internal(
        "publish latency SLO sanity failed: inline publish (" +
        FormatDouble(inline_max, 3) + "ms) undercuts the background swap (" +
        FormatDouble(bg_max, 3) + "ms) at " +
        std::to_string(counts.back()) + " sessions");
  }
  std::printf("background publish p50 flat in the session count (within 2x "
              "%zu -> %zu): OK\n\n",
              counts.front(), counts.back());
  return Status::OK();
}

Status SuiteEpochLifecycle(SuiteContext& ctx) {
  PrintConfig(ctx,
              "epoch_lifecycle: cross-epoch migration, warm publish, "
              "O(1) rolling plan keys, publish-latency SLO (PR 5/6)");
  const double scale = std::min(ctx.scale, ctx.smoke ? 0.02 : 0.1);
  AIGS_ASSIGN_OR_RETURN(const Dataset* amazon,
                        ctx.cache->Get("amazon", scale));
  AIGS_ASSIGN_OR_RETURN(const Dataset* imagenet,
                        ctx.cache->Get("imagenet", scale));
  AIGS_RETURN_NOT_OK(LifecycleMigrationThroughput(ctx, *amazon));
  AIGS_RETURN_NOT_OK(LifecycleMigrationThroughput(ctx, *imagenet));
  AIGS_RETURN_NOT_OK(LifecycleWarmPublish(ctx, *amazon));
  AIGS_RETURN_NOT_OK(LifecycleRollingKeys(ctx));
  AIGS_RETURN_NOT_OK(LifecyclePublishLatency(ctx, *amazon));

  // Guarded scenario rows: the service path under the non-uniform
  // depth-based cost model (per-node prices; Szyfelbein's cost-generalized
  // setting, arXiv:2603.17916) — closes the PR-1 open item. Cost
  // aggregates land in the JSON sink and the baseline guard.
  AsciiTable eval_table({"Scenario", "E[questions]", "E[priced cost]",
                         "Hit rate"});
  const struct {
    const char* dataset;
    const char* policy;
  } rows[] = {{"amazon", "greedy"},
              {"amazon", "cost_sensitive"},
              {"imagenet", "greedy"},
              {"imagenet", "cost_sensitive"}};
  for (const auto& row : rows) {
    ScenarioSpec spec;
    spec.label = std::string("epoch_lifecycle/") + row.dataset +
                 "/depthcost/" + row.policy;
    spec.dataset = row.dataset;
    spec.scale = scale;
    spec.policy = row.policy;
    spec.cost_model = "depth:1:8";
    spec.service = true;
    AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
    eval_table.AddRow({r.spec.label, FormatDouble(r.expected_cost),
                       FormatDouble(r.expected_priced_cost),
                       FormatDouble(100.0 * r.cache_hit_rate, 1) + "%"});
  }
  std::printf("[non-uniform per-node costs, cost=depth:1:8 "
              "(Szyfelbein, arXiv:2603.17916)]\n%s\n",
              eval_table.ToString().c_str());
  std::printf("depth-based prices are adversarial for cost-aware "
              "selection: every informative split sits mid-depth at a "
              "similar price, so cost-blind and cost-aware greedy land "
              "within a few percent (contrast the caigs suite's random "
              "prices, where savings reach 20%%+). All four rows are "
              "pinned by the baseline guard.\n");
  return Status::OK();
}

// ---- durability: WAL overhead, recovery throughput, identity (PR 7) --------

/// Self-cleaning scratch directory for one durable-store measurement.
class BenchDir {
 public:
  explicit BenchDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("aigs_bench_durability_" + tag + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StatusOr<std::unique_ptr<Engine>> MakeDurableEngine(
    const Dataset& d, const std::string& dir, const WalSyncOptions* sync) {
  EngineOptions options;
  options.drain.background = false;
  auto engine = std::make_unique<Engine>(options);
  AIGS_RETURN_NOT_OK(PublishLifecycleEpoch(*engine, d, d.real_distribution));
  if (sync != nullptr) {
    DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.sync = *sync;
    dopts.checkpoint_every = 0;  // measure the WAL, not checkpoint cadence
    AIGS_RETURN_NOT_OK(engine->EnableDurability(dopts));
  }
  return engine;
}

/// (a) Hot-path overhead: per-operation Ask+Answer latency with the WAL off
/// vs on under each fsync policy. The SLO the acceptance pins: with
/// fsync=interval (the serving default) the per-op p50 stays within 1.5x
/// of the WAL-off p50 (plus 2us absolute slack — both sides are a few
/// microseconds, timer noise is not).
Status DurabilityAnswerOverhead(SuiteContext& ctx, const Dataset& d) {
  struct Mode {
    const char* name;
    bool durable;
    WalSyncOptions sync;
    std::size_t sessions;
  };
  const std::size_t kSessions = ctx.smoke ? 300 : 2'000;
  // fsync=always pays a real disk flush per op; sample fewer sessions.
  const std::vector<Mode> modes = {
      {"off", false, {}, kSessions},
      {"wal:none", true, {FsyncPolicy::kNone, 1}, kSessions},
      {"wal:interval:64", true, {FsyncPolicy::kInterval, 64}, kSessions},
      {"wal:always", true, {FsyncPolicy::kAlways, 1}, kSessions / 10},
  };
  const AliasTable sampler(d.real_distribution);

  AsciiTable table({"WAL", "Ops", "Ask+Answer p50 (us)", "p99 (us)",
                    "Overhead vs off"});
  std::map<std::string, double> p50s;
  for (const Mode& mode : modes) {
    BenchDir dir(std::string("overhead_") +
                 (mode.durable ? FormatFsyncPolicy(mode.sync) : "off"));
    AIGS_ASSIGN_OR_RETURN(
        std::unique_ptr<Engine> engine,
        MakeDurableEngine(d, dir.path(), mode.durable ? &mode.sync : nullptr));
    Rng rng(8008);
    std::vector<double> op_ms;
    op_ms.reserve(mode.sessions * 8);
    for (std::size_t i = 0; i < mode.sessions; ++i) {
      const NodeId target = sampler.Sample(rng);
      ExactOracle oracle(d.hierarchy.reach(), target);
      AIGS_ASSIGN_OR_RETURN(const SessionId id, engine->Open("greedy"));
      for (;;) {
        WallTimer timer;
        AIGS_ASSIGN_OR_RETURN(const Query q, engine->Ask(id));
        if (q.kind == Query::Kind::kDone) {
          break;
        }
        AIGS_RETURN_NOT_OK(engine->Answer(id, AnswerFromOracle(q, oracle)));
        op_ms.push_back(timer.ElapsedMillis());
      }
      AIGS_RETURN_NOT_OK(engine->Close(id));
    }
    const double p50_us = NearestRankMs(op_ms, 0.50) * 1000.0;
    const double p99_us = NearestRankMs(op_ms, 0.99) * 1000.0;
    p50s[mode.name] = p50_us;
    table.AddRow({mode.name, FormatWithCommas(op_ms.size()),
                  FormatDouble(p50_us, 2), FormatDouble(p99_us, 2),
                  p50s.count("off") != 0 && p50s["off"] > 0
                      ? FormatDouble(p50_us / p50s["off"], 2) + "x"
                      : "-"});
    if (ctx.results != nullptr) {
      // Wall-only synthetic row: the latency lives in wall_ms, which the
      // baseline guard never compares.
      ScenarioResult row;
      row.spec.label = std::string("durability/answer_p50/") + mode.name;
      row.spec.dataset = d.name;
      row.spec.policy = "greedy";
      row.spec.service = true;
      row.policy_name = "greedy";
      row.nodes = d.hierarchy.NumNodes();
      row.wall_ms = p50_us / 1000.0;
      ctx.results->push_back(row);
    }
  }
  std::printf("[hot-path WAL overhead: %s, greedy, per-op Ask+Answer "
              "latency]\n%s\n",
              d.name.c_str(), table.ToString().c_str());

  // The absolute slack is tuned for uninstrumented builds; under ASan/TSan
  // every WAL-path allocation and syscall is instrumented, so the latency
  // gate is meaningless there (CI's sanitize --smoke runs are about memory
  // safety, not SLOs) — measure and report, but do not gate.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr bool kSanitizedBuild = true;
#else
  constexpr bool kSanitizedBuild = false;
#endif
#else
  constexpr bool kSanitizedBuild = false;
#endif
  const double off = p50s["off"];
  const double interval = p50s["wal:interval:64"];
  if (kSanitizedBuild) {
    std::printf("fsync=interval SLO gate skipped (sanitized build)\n\n");
    return Status::OK();
  }
  if (interval > 1.5 * off + 0.002 * 1000.0) {
    return Status::Internal(
        "durability SLO violated: fsync=interval Ask+Answer p50 (" +
        FormatDouble(interval, 2) + "us) exceeds 1.5x the WAL-off p50 (" +
        FormatDouble(off, 2) + "us) + 2us slack");
  }
  std::printf("fsync=interval p50 within 1.5x of WAL off (+2us slack): "
              "OK\n\n");
  return Status::OK();
}

/// (b) Recovery throughput: sessions parked at depth 4 on one shared
/// target (the plan trie amortizes the planner, so the measurement is the
/// durable-store scan + replay, not planning), recovered by a fresh engine.
Status DurabilityRecoveryThroughput(SuiteContext& ctx, const Dataset& d) {
  const std::vector<std::size_t> counts =
      ctx.smoke ? std::vector<std::size_t>{200, 1'000}
                : std::vector<std::size_t>{1'000, 100'000};
  const std::size_t kDepth = 4;
  // One deep-ish target shared by every session: replay becomes pure trie
  // hits after the first session, mirroring a warm serving fleet.
  const AliasTable sampler(d.real_distribution);
  Rng target_rng(9009);
  const NodeId target = sampler.Sample(target_rng);

  AsciiTable table({"Sessions", "WAL records", "Recover ms", "Sessions/s"});
  for (const std::size_t count : counts) {
    BenchDir dir("recovery_" + std::to_string(count));
    const WalSyncOptions sync{FsyncPolicy::kNone, 1};  // build fast; the
                                                       // timed side reads
    {
      AIGS_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                            MakeDurableEngine(d, dir.path(), &sync));
      for (std::size_t i = 0; i < count; ++i) {
        AIGS_ASSIGN_OR_RETURN(
            const SessionId id,
            OpenIdleAtPrefix(*engine, "greedy", d.hierarchy, target, kDepth));
        if (id == kInvalidSession) {
          return Status::Internal("bench target finished before depth 4");
        }
      }
      AIGS_RETURN_NOT_OK(engine->FlushDurable());
    }

    EngineOptions options;
    options.drain.background = false;
    Engine engine(options);
    AIGS_RETURN_NOT_OK(
        PublishLifecycleEpoch(engine, d, d.real_distribution));
    DurabilityOptions dopts;
    dopts.dir = dir.path();
    dopts.sync = sync;
    WallTimer timer;
    AIGS_ASSIGN_OR_RETURN(const RecoveryStats recovery,
                          engine.Recover(dopts));
    const double millis = timer.ElapsedMillis();
    if (recovery.recovered != count) {
      return Status::Internal(
          "recovery dropped sessions: " + std::to_string(recovery.recovered) +
          " of " + std::to_string(count));
    }
    table.AddRow({FormatWithCommas(count),
                  FormatWithCommas(recovery.wal_records),
                  FormatDouble(millis, 1),
                  millis > 0 ? FormatWithCommas(static_cast<std::uint64_t>(
                                   static_cast<double>(count) * 1000.0 /
                                   millis))
                             : "-"});
    if (ctx.results != nullptr) {
      ScenarioResult row;
      row.spec.label = "durability/recovery/" + std::to_string(count);
      row.spec.dataset = d.name;
      row.spec.policy = "greedy";
      row.spec.service = true;
      row.policy_name = "greedy";
      row.nodes = d.hierarchy.NumNodes();
      row.wall_ms = millis;
      ctx.results->push_back(row);
    }
  }
  std::printf("[recovery throughput: %s, sessions parked at depth %zu, "
              "checkpoint + WAL-tail replay]\n%s\n",
              d.name.c_str(), kDepth, table.ToString().c_str());
  return Status::OK();
}

/// (c) Behavior identity: the WAL is bookkeeping, never behavior — a
/// durable engine and a plain one must emit bit-identical Save blobs for
/// the same answer stream. Guarded suite-internally.
Status DurabilityBehaviorIdentity(SuiteContext& ctx, const Dataset& d) {
  const std::size_t kSessions = ctx.smoke ? 16 : 64;
  const std::size_t kDepth = 5;
  const AliasTable sampler(d.real_distribution);

  BenchDir dir("identity");
  const WalSyncOptions sync{FsyncPolicy::kInterval, 8};
  AIGS_ASSIGN_OR_RETURN(std::unique_ptr<Engine> plain,
                        MakeDurableEngine(d, "", nullptr));
  AIGS_ASSIGN_OR_RETURN(std::unique_ptr<Engine> durable,
                        MakeDurableEngine(d, dir.path(), &sync));
  Rng rng(1001);
  std::size_t compared = 0;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const NodeId target = sampler.Sample(rng);
    AIGS_ASSIGN_OR_RETURN(
        const SessionId a,
        OpenIdleAtPrefix(*plain, "greedy", d.hierarchy, target, kDepth));
    AIGS_ASSIGN_OR_RETURN(
        const SessionId b,
        OpenIdleAtPrefix(*durable, "greedy", d.hierarchy, target, kDepth));
    if ((a == kInvalidSession) != (b == kInvalidSession)) {
      return Status::Internal("durable engine diverged on session length");
    }
    if (a == kInvalidSession) {
      continue;
    }
    AIGS_ASSIGN_OR_RETURN(const std::string blob_a, plain->Save(a));
    AIGS_ASSIGN_OR_RETURN(const std::string blob_b, durable->Save(b));
    if (blob_a != blob_b) {
      return Status::Internal(
          "durable engine produced a different transcript for target " +
          std::to_string(target));
    }
    ++compared;
  }
  std::printf("[behavior identity: %zu/%zu transcripts bit-identical with "
              "the WAL on vs off: OK]\n\n",
              compared, kSessions);
  return Status::OK();
}

Status SuiteDurability(SuiteContext& ctx) {
  PrintConfig(ctx,
              "durability: WAL hot-path overhead, recovery throughput, "
              "behavior identity (PR 7)");
  const double scale = std::min(ctx.scale, ctx.smoke ? 0.02 : 0.1);
  AIGS_ASSIGN_OR_RETURN(const Dataset* amazon,
                        ctx.cache->Get("amazon", scale));
  AIGS_RETURN_NOT_OK(DurabilityBehaviorIdentity(ctx, *amazon));
  AIGS_RETURN_NOT_OK(DurabilityAnswerOverhead(ctx, *amazon));
  AIGS_RETURN_NOT_OK(DurabilityRecoveryThroughput(ctx, *amazon));
  return Status::OK();
}

// ---- network: wire front end, shard router, loadgen SLOs (PR 8) -----------

/// True when the binary runs under ASan or TSan — latency SLO gates are
/// meaningless with every allocation and syscall instrumented.
constexpr bool SanitizedBuild() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Every registry policy spec the hierarchy supports (mirrors
/// test_epoch_migration.cc; the scripted policy gets a complete question
/// order so it can finish any target).
std::vector<std::string> NetworkSpecsFor(const Hierarchy& h) {
  std::string full_order = "scripted:order=";
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    if (v == h.root()) {
      continue;
    }
    if (full_order.back() != '=') {
      full_order += '+';
    }
    full_order += std::to_string(v);
  }
  std::vector<std::string> specs = {
      "greedy",         "greedy_dag",     "greedy_naive",
      "naive",          "batched:k=3",    "cost_sensitive",
      "migs",           "migs:ordered=true",
      "wigs",           "top_down",       "topdown",
      full_order,
  };
  if (h.is_tree()) {
    specs.push_back("greedy_tree");
    specs.push_back("greedy_tree:scan=heap");
  }
  return specs;
}

Status PublishNetworkEpoch(Engine& engine, const Dataset& d) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(d.hierarchy);
  config.distribution = d.real_distribution;
  Rng rng(7);
  config.cost_model = std::make_shared<const CostModel>(
      CostModel::UniformRandom(d.hierarchy.NumNodes(), 1, 9, rng));
  config.policy_specs = NetworkSpecsFor(d.hierarchy);
  return engine.Publish(std::move(config)).status();
}

/// One engine with its TCP server, for in-process loopback measurements.
struct NetBackend {
  explicit NetBackend(const Dataset& d) : server(engine, {}) {
    AIGS_CHECK(PublishNetworkEpoch(engine, d).ok());
    AIGS_CHECK(server.Start().ok());
  }
  Engine engine;
  net::AigsServer server;
};

/// Opens a session for `spec`, answers toward `target`, saves the
/// transcript after `save_at` answers (or at completion if the search ends
/// earlier), finishes, closes. Works against anything with the Engine
/// session verbs — the Engine itself or a ShardRouter.
template <typename Api>
StatusOr<std::pair<std::string, NodeId>> DriveSaveFinish(
    Api& api, const Hierarchy& h, const std::string& spec, NodeId target,
    std::size_t save_at) {
  ExactOracle oracle(h.reach(), target);
  AIGS_ASSIGN_OR_RETURN(const SessionId id, api.Open(spec));
  std::string blob;
  NodeId found = kInvalidNode;
  for (std::size_t step = 0;; ++step) {
    if (step == save_at) {
      AIGS_ASSIGN_OR_RETURN(blob, api.Save(id));
    }
    AIGS_ASSIGN_OR_RETURN(const Query q, api.Ask(id));
    if (q.kind == Query::Kind::kDone) {
      if (step < save_at) {
        AIGS_ASSIGN_OR_RETURN(blob, api.Save(id));
      }
      found = q.node;
      break;
    }
    AIGS_RETURN_NOT_OK(api.Answer(id, AnswerFromOracle(q, oracle)));
  }
  AIGS_RETURN_NOT_OK(api.Close(id));
  return std::make_pair(std::move(blob), found);
}

/// (a) Transcript bit-identity across the wire: for EVERY registry policy,
/// a session routed through the ShardRouter (consistent-hash placement,
/// binary frames, a real epoll server) must produce byte-identical Save
/// blobs — and the same answer — as an in-process Engine fed the same
/// oracle. The network layer is transport, never behavior. Guarded
/// suite-internally.
Status NetworkTranscriptIdentity(SuiteContext& ctx, const Dataset& d) {
  const std::size_t kTargets = ctx.smoke ? 2 : 6;
  Engine local;
  AIGS_RETURN_NOT_OK(PublishNetworkEpoch(local, d));
  NetBackend s0(d), s1(d), s2(d);
  net::ShardRouter router({s0.server.endpoint(), s1.server.endpoint(),
                           s2.server.endpoint()});

  const AliasTable sampler(d.real_distribution);
  Rng rng(4242);
  std::size_t compared = 0;
  for (const std::string& spec : NetworkSpecsFor(d.hierarchy)) {
    for (std::size_t i = 0; i < kTargets; ++i) {
      const NodeId target = sampler.Sample(rng);
      AIGS_ASSIGN_OR_RETURN(
          const auto in_process,
          DriveSaveFinish(local, d.hierarchy, spec, target, 3));
      AIGS_ASSIGN_OR_RETURN(
          const auto routed,
          DriveSaveFinish(router, d.hierarchy, spec, target, 3));
      if (in_process.first != routed.first) {
        return Status::Internal(
            "network transcript identity violated: policy '" + spec +
            "', target " + std::to_string(target) +
            " — the routed Save blob differs from the in-process one");
      }
      if (in_process.second != routed.second) {
        return Status::Internal(
            "network answer identity violated: policy '" + spec +
            "' found " + std::to_string(routed.second) + " over the wire vs " +
            std::to_string(in_process.second) + " in process");
      }
      ++compared;
    }
  }
  std::printf("[transcript identity: %zu sessions (%zu policies x %zu "
              "targets) bit-identical through router + wire vs in-process: "
              "OK]\n\n",
              compared, NetworkSpecsFor(d.hierarchy).size(), kTargets);
  return Status::OK();
}

/// (b) Loadgen SLOs: closed-loop traffic against one loopback server and a
/// 3-shard fleet, 64 connections, real greedy sessions end to end. The
/// absolute gates (>=100k req/s, p99 <= 1ms single-server; 3-shard
/// aggregate >= 2x single) hold on an optimized build with enough cores for
/// the loadgen and the servers to run concurrently; elsewhere the numbers
/// are measured and reported but not gated.
Status NetworkLoadgenSlo(SuiteContext& ctx, const Dataset& d) {
  const std::uint64_t kRequests = ctx.smoke ? 30'000 : 200'000;
  const std::size_t kConnections = 64;

  const auto run = [&](const std::vector<net::Endpoint>& targets) {
    net::LoadgenOptions options;
    options.targets = targets;
    options.connections = kConnections;
    options.max_requests = kRequests;
    options.hierarchy = &d.hierarchy;
    return net::RunLoadgen(options);
  };

  NetBackend single(d);
  AIGS_ASSIGN_OR_RETURN(const net::LoadgenResult one,
                        run({single.server.endpoint()}));
  if (one.errors != 0 || one.wrong_targets != 0) {
    return Status::Internal("single-server loadgen saw " +
                            std::to_string(one.errors) + " errors and " +
                            std::to_string(one.wrong_targets) +
                            " wrong targets");
  }
  single.server.Stop();  // free the core(s) before the sharded run

  NetBackend s0(d), s1(d), s2(d);
  AIGS_ASSIGN_OR_RETURN(
      const net::LoadgenResult three,
      run({s0.server.endpoint(), s1.server.endpoint(),
           s2.server.endpoint()}));
  if (three.errors != 0 || three.wrong_targets != 0) {
    return Status::Internal("3-shard loadgen saw " +
                            std::to_string(three.errors) + " errors and " +
                            std::to_string(three.wrong_targets) +
                            " wrong targets");
  }

  AsciiTable table({"Config", "Requests", "Throughput req/s", "p50 us",
                    "p99 us", "Sessions"});
  const auto add = [&](const char* name, const net::LoadgenResult& r) {
    table.AddRow({name, FormatWithCommas(r.requests),
                  FormatWithCommas(static_cast<std::uint64_t>(
                      r.throughput_rps)),
                  FormatDouble(r.p50_us, 1), FormatDouble(r.p99_us, 1),
                  FormatWithCommas(r.sessions_completed)});
    if (ctx.results != nullptr) {
      // Wall-only synthetic rows: the metric lives in wall_ms (p50/p99 in
      // milliseconds, throughput in kreq/s), which the baseline guard
      // never compares.
      const struct {
        const char* metric;
        double value;
      } rows[] = {{"p50_ms", r.p50_us / 1000.0},
                  {"p99_ms", r.p99_us / 1000.0},
                  {"krps", r.throughput_rps / 1000.0}};
      for (const auto& row : rows) {
        ScenarioResult result;
        result.spec.label = std::string("network/loadgen/") + name + "/" +
                            row.metric;
        result.spec.dataset = d.name;
        result.spec.policy = "greedy";
        result.spec.service = true;
        result.policy_name = "greedy";
        result.nodes = d.hierarchy.NumNodes();
        result.wall_ms = row.value;
        ctx.results->push_back(result);
      }
    }
  };
  add("single", one);
  add("shard3", three);
  std::printf("[closed-loop loadgen: loopback, %zu connections, full "
              "open/ask/answer/close sessions, greedy on %s]\n%s\n",
              kConnections, d.name.c_str(), table.ToString().c_str());

#ifdef NDEBUG
  constexpr bool kOptimized = true;
#else
  constexpr bool kOptimized = false;
#endif
  const unsigned cores = std::thread::hardware_concurrency();
  if (!kOptimized || SanitizedBuild() || cores < 4) {
    std::printf("network SLO gates skipped (%s build, %u core(s)): the "
                "targets assume an optimized binary and >=4 cores so the "
                "loadgen does not timeshare with the servers\n\n",
                !kOptimized ? "debug"
                            : (SanitizedBuild() ? "sanitized" : "release"),
                cores);
    return Status::OK();
  }
  if (one.throughput_rps < 100'000.0) {
    return Status::Internal(
        "network SLO violated: single-server throughput " +
        FormatDouble(one.throughput_rps, 0) + " req/s is under 100k");
  }
  if (one.p99_us > 1000.0) {
    return Status::Internal("network SLO violated: single-server p99 " +
                            FormatDouble(one.p99_us, 1) +
                            "us exceeds 1ms at 64 connections");
  }
  if (three.throughput_rps < 2.0 * one.throughput_rps) {
    return Status::Internal(
        "network SLO violated: 3-shard aggregate " +
        FormatDouble(three.throughput_rps, 0) + " req/s is under 2x the "
        "single-server " + FormatDouble(one.throughput_rps, 0) + " req/s");
  }
  std::printf("single server >=100k req/s, p99 <=1ms, 3-shard >=2x: OK\n\n");
  return Status::OK();
}

Status SuiteNetwork(SuiteContext& ctx) {
  PrintConfig(ctx,
              "network: aigs-wire/1 transcript identity, loopback loadgen "
              "SLOs, shard scaling (PR 8)");
  const double scale = std::min(ctx.scale, ctx.smoke ? 0.02 : 0.1);
  AIGS_ASSIGN_OR_RETURN(const Dataset* amazon,
                        ctx.cache->Get("amazon", scale));
  net::IgnoreSigpipe();  // a loadgen peer may drop a connection mid-write
  AIGS_RETURN_NOT_OK(NetworkTranscriptIdentity(ctx, *amazon));
  AIGS_RETURN_NOT_OK(NetworkLoadgenSlo(ctx, *amazon));
  return Status::OK();
}

// ---- bigcatalog: compressed reachability at catalog scale (PR 9) ----------

/// Peak resident set size (VmHWM) in MiB from /proc/self/status; 0 when the
/// file is unavailable. Informational only — it covers the whole process
/// (every suite run so far), so the memory gate compares index MemoryBytes
/// instead.
double PeakRssMib() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    unsigned long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %lu", &kb) == 1) {
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0;
}

void PushWallRow(SuiteContext& ctx, const std::string& label,
                 const std::string& dataset, std::size_t nodes,
                 double value) {
  if (ctx.results == nullptr) {
    return;
  }
  // Wall-only synthetic row: the metric lives in wall_ms, which the
  // baseline guard never compares.
  ScenarioResult row;
  row.spec.label = label;
  row.spec.dataset = dataset;
  row.spec.policy = "greedy";
  row.policy_name = "greedy";
  row.nodes = nodes;
  row.wall_ms = value;
  ctx.results->push_back(row);
}

/// Per-Ask latency through real Engine sessions (greedy policy): opens
/// `sessions` searches against targets drawn from `dist`, times every Ask,
/// verifies each search finds its target, returns the p50/p99 in ms.
struct AskLatency {
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t asks = 0;
};

StatusOr<AskLatency> MeasureAskLatency(const Hierarchy& h,
                                       const Distribution& dist,
                                       std::size_t sessions,
                                       std::uint64_t seed) {
  EngineOptions options;
  options.drain.background = false;
  Engine engine(options);
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(h);
  config.distribution = dist;
  config.policy_specs = {"greedy"};
  AIGS_RETURN_NOT_OK(engine.Publish(std::move(config)).status());

  const AliasTable sampler(dist);
  Rng rng(seed);
  std::vector<double> op_ms;
  for (std::size_t i = 0; i < sessions; ++i) {
    const NodeId target = sampler.Sample(rng);
    ExactOracle oracle(h.reach(), target);
    AIGS_ASSIGN_OR_RETURN(const SessionId id, engine.Open("greedy"));
    for (;;) {
      WallTimer timer;
      AIGS_ASSIGN_OR_RETURN(const Query q, engine.Ask(id));
      op_ms.push_back(timer.ElapsedMillis());
      if (q.kind == Query::Kind::kDone) {
        if (q.node != target) {
          return Status::Internal("bigcatalog session found " +
                                  std::to_string(q.node) + ", expected " +
                                  std::to_string(target));
        }
        break;
      }
      AIGS_RETURN_NOT_OK(engine.Answer(id, AnswerFromOracle(q, oracle)));
    }
    AIGS_RETURN_NOT_OK(engine.Close(id));
  }
  AskLatency r;
  r.p50_ms = NearestRankMs(op_ms, 0.50);
  r.p99_ms = NearestRankMs(op_ms, 0.99);
  r.asks = op_ms.size();
  return r;
}

/// Publishes one epoch carrying every registry policy plus the
/// storage-pinned naive-greedy spec for `pinned_backend` (closure on dense
/// rows, compressed on compressed rows) and the bfs rescan baseline. The
/// cost model is seeded identically on every call so catalogs built from
/// the same graph get bit-identical fingerprints — Save blobs stay
/// comparable across storages.
Status PublishIdentityEpoch(Engine& engine, const Dataset& d,
                            const std::string& pinned_backend) {
  CatalogConfig config;
  config.hierarchy = UnownedHierarchy(d.hierarchy);
  config.distribution = d.real_distribution;
  Rng rng(7);
  config.cost_model = std::make_shared<const CostModel>(
      CostModel::UniformRandom(d.hierarchy.NumNodes(), 1, 9, rng));
  config.policy_specs = NetworkSpecsFor(d.hierarchy);
  config.policy_specs.push_back("greedy_naive:backend=bfs");
  config.policy_specs.push_back("greedy_naive:backend=" + pinned_backend);
  return engine.Publish(std::move(config)).status();
}

/// Removes the `policy <spec>` line from a Save blob so transcripts of the
/// same search under differently-named (but behavior-identical) specs —
/// backend=closure vs backend=compressed — can be compared byte for byte.
std::string StripPolicyLine(const std::string& blob) {
  const std::size_t at = blob.find("\npolicy ");
  if (at == std::string::npos) {
    return blob;
  }
  const std::size_t end = blob.find('\n', at + 1);
  return blob.substr(0, at) + blob.substr(end);
}

/// (a) Dense vs compressed closure rows on the same ImageNet-shaped DAG:
/// transcript bit-identity for every registry policy (and the pinned
/// closure/compressed/bfs naive-greedy backends), guarded scenario rows per
/// storage, per-backend build-time / bytes-per-row / Ask-latency, and the
/// p50 ratio gate.
Status BigcatalogCompare(SuiteContext& ctx) {
  // Identity runs every registry policy (including the O(n·m)/question bfs
  // rescans), so it uses a capped scale, like the network suite.
  const double iscale = std::min(ctx.scale, ctx.smoke ? 0.03 : 0.1);
  AIGS_ASSIGN_OR_RETURN(const Dataset* dense,
                        ctx.cache->Get("imagenet", iscale, "dense"));
  AIGS_ASSIGN_OR_RETURN(const Dataset* comp,
                        ctx.cache->Get("imagenet", iscale, "compressed"));
  if (dense->hierarchy.reach().storage() !=
          ReachabilityIndex::Storage::kDenseClosure ||
      comp->hierarchy.reach().storage() !=
          ReachabilityIndex::Storage::kCompressedClosure) {
    return Status::Internal("reach= did not pin the expected storage");
  }

  // Transcript bit-identity, blob level: every registry policy must emit
  // byte-identical Save blobs (and the same answer) on dense vs compressed
  // rows; the pinned backends additionally match after normalizing the
  // policy line their specs differ in. Guarded suite-internally.
  {
    Engine e_dense, e_comp;
    AIGS_RETURN_NOT_OK(PublishIdentityEpoch(e_dense, *dense, "closure"));
    AIGS_RETURN_NOT_OK(PublishIdentityEpoch(e_comp, *comp, "compressed"));
    const std::size_t kTargets = ctx.smoke ? 2 : 4;
    const AliasTable sampler(dense->real_distribution);
    Rng rng(2718);
    std::vector<std::string> specs = NetworkSpecsFor(dense->hierarchy);
    specs.push_back("greedy_naive:backend=bfs");
    std::size_t compared = 0;
    for (const std::string& spec : specs) {
      for (std::size_t i = 0; i < kTargets; ++i) {
        const NodeId target = sampler.Sample(rng);
        AIGS_ASSIGN_OR_RETURN(
            const auto on_dense,
            DriveSaveFinish(e_dense, dense->hierarchy, spec, target, 3));
        AIGS_ASSIGN_OR_RETURN(
            const auto on_comp,
            DriveSaveFinish(e_comp, comp->hierarchy, spec, target, 3));
        if (on_dense.first != on_comp.first ||
            on_dense.second != on_comp.second) {
          return Status::Internal(
              "storage transcript identity violated: policy '" + spec +
              "', target " + std::to_string(target) +
              " — compressed rows produced a different transcript than "
              "dense rows");
        }
        ++compared;
      }
    }
    for (std::size_t i = 0; i < kTargets; ++i) {
      const NodeId target = sampler.Sample(rng);
      AIGS_ASSIGN_OR_RETURN(
          const auto on_dense,
          DriveSaveFinish(e_dense, dense->hierarchy,
                          "greedy_naive:backend=closure", target, 3));
      AIGS_ASSIGN_OR_RETURN(
          const auto on_comp,
          DriveSaveFinish(e_comp, comp->hierarchy,
                          "greedy_naive:backend=compressed", target, 3));
      if (StripPolicyLine(on_dense.first) != StripPolicyLine(on_comp.first) ||
          on_dense.second != on_comp.second) {
        return Status::Internal(
            "pinned-backend transcript identity violated at target " +
            std::to_string(target) +
            ": backend=compressed diverged from backend=closure");
      }
      ++compared;
    }
    std::printf("[storage transcript identity: %zu sessions (%zu policies + "
                "pinned backends, %zu targets) bit-identical on dense vs "
                "compressed rows: OK]\n",
                compared, specs.size(), kTargets);
  }

  // Guarded rows: the same sampled evaluation per storage (and per pinned
  // backend) — the baseline pins the aggregates, the suite additionally
  // requires the storages to agree EXACTLY, not just within guard slack.
  {
    struct IdentRow {
      const char* suffix;
      const char* policy;
      const char* reach;
      double expected_cost;
      std::uint64_t max_cost;
    } rows[] = {
        {"greedy/dense", "greedy", "dense", 0, 0},
        {"greedy/compressed", "greedy", "compressed", 0, 0},
        {"naive/bfs", "greedy_naive:backend=bfs", "dense", 0, 0},
        {"naive/closure", "greedy_naive:backend=closure", "dense", 0, 0},
        {"naive/compressed", "greedy_naive:backend=compressed", "compressed",
         0, 0},
    };
    for (auto& row : rows) {
      ScenarioSpec spec;
      spec.label = std::string("bigcatalog/ident/") + row.suffix;
      spec.dataset = "imagenet";
      spec.scale = iscale;
      spec.policy = row.policy;
      spec.reach = row.reach;
      spec.samples = 256;
      spec.seed = 4040;
      AIGS_ASSIGN_OR_RETURN(const ScenarioResult r, Run(ctx, spec));
      row.expected_cost = r.expected_cost;
      row.max_cost = r.max_cost;
    }
    if (rows[0].expected_cost != rows[1].expected_cost ||
        rows[0].max_cost != rows[1].max_cost) {
      return Status::Internal(
          "greedy diverged across storages: dense E[cost] " +
          FormatDouble(rows[0].expected_cost, 6) + " vs compressed " +
          FormatDouble(rows[1].expected_cost, 6));
    }
    if (rows[2].expected_cost != rows[3].expected_cost ||
        rows[3].expected_cost != rows[4].expected_cost ||
        rows[2].max_cost != rows[3].max_cost ||
        rows[3].max_cost != rows[4].max_cost) {
      return Status::Internal(
          "naive-greedy backends diverged: bfs E[cost] " +
          FormatDouble(rows[2].expected_cost, 6) + ", closure " +
          FormatDouble(rows[3].expected_cost, 6) + ", compressed " +
          FormatDouble(rows[4].expected_cost, 6));
    }
    std::printf("[backend aggregate identity: greedy and naive-greedy "
                "agree exactly across dense/compressed/bfs: OK]\n\n");
  }

  // Latency + footprint comparison at the paper's DAG scale (the 3x p50
  // gate is defined at ImageNet's 28k nodes; smoke shrinks the catalog and
  // reports without gating).
  const double lscale = ctx.smoke ? std::min(ctx.scale, 0.1) : 1.0;
  AIGS_ASSIGN_OR_RETURN(const Dataset* ldense,
                        ctx.cache->Get("imagenet", lscale, "dense"));
  AIGS_ASSIGN_OR_RETURN(const Dataset* lcomp,
                        ctx.cache->Get("imagenet", lscale, "compressed"));
  const std::size_t n = ldense->hierarchy.NumNodes();

  double dense_build_ms = 0, comp_build_ms = 0;
  {
    const Digraph& g = ldense->hierarchy.graph();
    ReachabilityOptions dense_opts;
    dense_opts.closure = ReachabilityOptions::Closure::kDense;
    dense_opts.force_closure_on_trees = true;
    WallTimer t1;
    const ReachabilityIndex dense_ix(g, dense_opts);
    dense_build_ms = t1.ElapsedMillis();
    ReachabilityOptions comp_opts;
    comp_opts.closure = ReachabilityOptions::Closure::kCompressed;
    comp_opts.force_closure_on_trees = true;
    WallTimer t2;
    const ReachabilityIndex comp_ix(g, comp_opts);
    comp_build_ms = t2.ElapsedMillis();
  }

  const std::size_t kSessions = ctx.smoke ? 8 : 48;
  AIGS_ASSIGN_OR_RETURN(
      const AskLatency dense_lat,
      MeasureAskLatency(ldense->hierarchy, ldense->real_distribution,
                        kSessions, 321));
  AIGS_ASSIGN_OR_RETURN(
      const AskLatency comp_lat,
      MeasureAskLatency(lcomp->hierarchy, lcomp->real_distribution,
                        kSessions, 321));

  const double dense_mb = static_cast<double>(
                              ldense->hierarchy.reach().MemoryBytes()) /
                          (1024.0 * 1024.0);
  const double comp_mb = static_cast<double>(
                             lcomp->hierarchy.reach().MemoryBytes()) /
                         (1024.0 * 1024.0);
  AsciiTable table({"Backend", "Build ms", "Index MB", "Bytes/row",
                    "Ask p50 us", "Ask p99 us"});
  const struct {
    const char* name;
    double build_ms, mb;
    const AskLatency* lat;
  } backends[] = {{"dense", dense_build_ms, dense_mb, &dense_lat},
                  {"compressed", comp_build_ms, comp_mb, &comp_lat}};
  for (const auto& b : backends) {
    table.AddRow({b.name, FormatDouble(b.build_ms, 1),
                  FormatDouble(b.mb, 2),
                  FormatDouble(b.mb * 1024.0 * 1024.0 /
                                   static_cast<double>(n), 1),
                  FormatDouble(b.lat->p50_ms * 1000.0, 2),
                  FormatDouble(b.lat->p99_ms * 1000.0, 2)});
    const std::string prefix = std::string("bigcatalog/compare/") + b.name;
    PushWallRow(ctx, prefix + "/build_ms", "imagenet", n, b.build_ms);
    PushWallRow(ctx, prefix + "/index_mb", "imagenet", n, b.mb);
    PushWallRow(ctx, prefix + "/bytes_per_row", "imagenet", n,
                b.mb * 1024.0 * 1024.0 / static_cast<double>(n));
    PushWallRow(ctx, prefix + "/ask_p50_ms", "imagenet", n, b.lat->p50_ms);
  }
  std::printf("[closure backends at %s nodes: greedy Engine sessions, "
              "%zu searches per backend]\n%s\n",
              FormatWithCommas(n).c_str(), kSessions,
              table.ToString().c_str());

#ifdef NDEBUG
  constexpr bool kOptimized = true;
#else
  constexpr bool kOptimized = false;
#endif
  if (!kOptimized || SanitizedBuild() || ctx.smoke) {
    std::printf("compressed p50 gate skipped (%s): the 3x target is "
                "defined for an optimized binary at the full 28k-node "
                "DAG\n\n",
                ctx.smoke ? "smoke scale"
                          : (SanitizedBuild() ? "sanitized build"
                                              : "debug build"));
    return Status::OK();
  }
  if (comp_lat.p50_ms > 3.0 * dense_lat.p50_ms + 0.005) {
    return Status::Internal(
        "bigcatalog SLO violated: compressed Ask p50 (" +
        FormatDouble(comp_lat.p50_ms * 1000.0, 1) + "us) exceeds 3x the "
        "dense closure p50 (" + FormatDouble(dense_lat.p50_ms * 1000.0, 1) +
        "us) + 5us slack at " + FormatWithCommas(n) + " nodes");
  }
  std::printf("compressed Ask p50 within 3x of dense closure (+5us slack) "
              "at %s nodes: OK\n\n", FormatWithCommas(n).c_str());
  return Status::OK();
}

/// (b) The headline ROADMAP gate: a million-node DAG catalog (100k in
/// smoke, so CI runners pass) must build, publish, and serve greedy
/// sessions with the closure index holding at most 10% of the dense
/// O(n²/8) footprint. Dense rows are never allocated at this scale — the
/// dense side of the comparison is arithmetic.
Status BigcatalogMillion(SuiteContext& ctx) {
  const std::size_t n = ctx.smoke ? 100'000 : 1'000'000;

  WallTimer gen_timer;
  Digraph g = GenerateCatalogDag(BigCatalogParams(n));
  const double gen_ms = gen_timer.ElapsedMillis();

  WallTimer build_timer;
  auto built = Hierarchy::Build(std::move(g));  // kAuto: must go compressed
  AIGS_RETURN_NOT_OK(built.status());
  const Hierarchy h = *std::move(built);
  const double build_ms = build_timer.ElapsedMillis();
  if (h.reach().storage() !=
      ReachabilityIndex::Storage::kCompressedClosure) {
    return Status::Internal(
        "kAuto picked dense storage for a " + FormatWithCommas(n) +
        "-node DAG — the compress threshold is not engaging");
  }

  const std::size_t index_bytes = h.reach().MemoryBytes();
  const U128 dense_bytes = ReachabilityIndex::DenseClosureBytes(n);
  const double dense_gb =
      static_cast<double>(dense_bytes) / (1024.0 * 1024.0 * 1024.0);
  const CompressedClosure::Stats stats = h.reach().compressed().stats();

  const Distribution dist =
      AssignZipfObjectCounts(n, 4 * static_cast<std::uint64_t>(n),
                             /*s=*/1.0, /*seed=*/77);
  const std::size_t kSessions = ctx.smoke ? 4 : 16;
  AIGS_ASSIGN_OR_RETURN(const AskLatency lat,
                        MeasureAskLatency(h, dist, kSessions, 888));

  const double index_mb = static_cast<double>(index_bytes) /
                          (1024.0 * 1024.0);
  const double pct = 100.0 * static_cast<double>(index_bytes) /
                     static_cast<double>(dense_bytes);
  std::printf(
      "[%s-node DAG catalog: generate %s ms, hierarchy+index build %s ms]\n"
      "  closure index: %s MB (%s%% of the %s GB dense footprint), "
      "%s interval rows / %s chunked (%s dense, %s delta, %s run chunks)\n"
      "  greedy sessions: %zu searches, %zu Asks, p50 %s us, p99 %s us\n"
      "  process peak RSS (all suites so far): %s MiB\n",
      FormatWithCommas(n).c_str(), FormatDouble(gen_ms, 0).c_str(),
      FormatDouble(build_ms, 0).c_str(), FormatDouble(index_mb, 1).c_str(),
      FormatDouble(pct, 2).c_str(), FormatDouble(dense_gb, 1).c_str(),
      FormatWithCommas(stats.interval_rows).c_str(),
      FormatWithCommas(stats.chunked_rows).c_str(),
      FormatWithCommas(stats.dense_chunks).c_str(),
      FormatWithCommas(stats.delta_chunks).c_str(),
      FormatWithCommas(stats.run_chunks).c_str(), kSessions, lat.asks,
      FormatDouble(lat.p50_ms * 1000.0, 1).c_str(),
      FormatDouble(lat.p99_ms * 1000.0, 1).c_str(),
      FormatDouble(PeakRssMib(), 0).c_str());

  PushWallRow(ctx, "bigcatalog/million/build_ms", "bigdag", n, build_ms);
  PushWallRow(ctx, "bigcatalog/million/index_mb", "bigdag", n, index_mb);
  PushWallRow(ctx, "bigcatalog/million/bytes_per_row", "bigdag", n,
              static_cast<double>(index_bytes) / static_cast<double>(n));
  PushWallRow(ctx, "bigcatalog/million/ask_p50_ms", "bigdag", n, lat.p50_ms);
  PushWallRow(ctx, "bigcatalog/million/peak_rss_mb", "bigdag", n,
              PeakRssMib());

  // The memory gate is deterministic (no timing involved), so it arms on
  // every build — including the CI smoke at 100k nodes.
  if (static_cast<U128>(index_bytes) * 10 > dense_bytes) {
    return Status::Internal(
        "bigcatalog memory gate violated: compressed index " +
        FormatDouble(index_mb, 1) + " MB exceeds 10% of the dense " +
        FormatDouble(dense_gb, 1) + " GB footprint at " +
        FormatWithCommas(n) + " nodes");
  }
  std::printf("compressed index <= 10%% of the dense closure footprint: "
              "OK\n");

#ifdef NDEBUG
  constexpr bool kOptimized = true;
#else
  constexpr bool kOptimized = false;
#endif
  if (!kOptimized || SanitizedBuild() || ctx.smoke) {
    std::printf("million-node Ask p50 gate skipped (debug/sanitized/smoke "
                "build)\n\n");
    return Status::OK();
  }
  if (lat.p50_ms > 50.0) {
    return Status::Internal(
        "bigcatalog SLO violated: Ask p50 " + FormatDouble(lat.p50_ms, 2) +
        "ms exceeds 50ms at " + FormatWithCommas(n) + " nodes");
  }
  std::printf("million-node Ask p50 <= 50ms: OK\n\n");
  return Status::OK();
}

Status SuiteBigcatalog(SuiteContext& ctx) {
  PrintConfig(ctx,
              "bigcatalog: compressed closure rows — storage identity, "
              "per-backend latency, million-node gate (PR 9)");
  AIGS_RETURN_NOT_OK(BigcatalogCompare(ctx));
  AIGS_RETURN_NOT_OK(BigcatalogMillion(ctx));
  return Status::OK();
}

// ---- kernels: SIMD dispatch + parallel closure build (PR 10) ---------------

/// Word-array shapes the micro rows sweep: dense random bits, ~1 bit/word
/// sparse, and interval-heavy (long all-ones / all-zeros stretches — what
/// compressed interval/run rows decay to).
enum class KernelFill { kDense, kSparse, kInterval };

const char* KernelFillName(KernelFill fill) {
  switch (fill) {
    case KernelFill::kDense:
      return "dense";
    case KernelFill::kSparse:
      return "sparse";
    case KernelFill::kInterval:
      return "interval";
  }
  return "?";
}

std::vector<std::uint64_t> KernelWords(std::size_t n, KernelFill fill,
                                       Rng& rng) {
  std::vector<std::uint64_t> words(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (fill) {
      case KernelFill::kDense:
        words[i] = rng.Next();
        break;
      case KernelFill::kSparse:
        words[i] = std::uint64_t{1} << rng.UniformInt(64);
        break;
      case KernelFill::kInterval:
        // 64-word stretches of all-ones alternating with all-zeros.
        words[i] = ((i / 64) % 2 == 0) ? ~std::uint64_t{0} : 0;
        break;
    }
  }
  return words;
}

/// Times `body` (already warmed once) over `iters` calls; returns ns/call.
template <typename Body>
double TimePerCallNs(std::size_t iters, Body&& body) {
  body();  // warm: page in the arrays, prime the branch predictors
  WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    body();
  }
  return timer.ElapsedNanos() / static_cast<double>(iters);
}

/// (a) Per-kernel scalar-vs-dispatched micro rows. Every kernel × data
/// shape gets a pair of wall-only rows; the fused count+weight kernel on
/// dense rows carries the PR-10 speedup gate. Both tables compute on the
/// same arrays, and their results are cross-checked — a dispatch bug fails
/// the suite before it can mis-benchmark.
Status KernelsMicro(SuiteContext& ctx) {
  const kernels::Ops& scalar = kernels::OpsFor(kernels::Mode::kScalar);
  const kernels::Ops& active = kernels::Active();
  // 2048-word operands (128k bits) match the hot-index regime: a closure
  // row of a ~128k-node catalog, with the 1 MB weight block cache-resident
  // across calls — at paper scale the weights ARE hot, so sizing the
  // operands to stream from memory would measure bandwidth, not kernels.
  constexpr std::size_t kWords = 1 << 11;
  const std::size_t kIters = ctx.smoke ? 160 : 640;

  std::printf("[kernels micro: %zu-word operands, %zu iterations/row, "
              "dispatched = %s]\n",
              kWords, kIters, active.name);
  AsciiTable table({"Kernel", "Shape", "Scalar ns/call",
                    std::string(active.name) + " ns/call", "Speedup"});

  double fused_dense_speedup = 0;
  Rng rng(515);
  for (const KernelFill fill :
       {KernelFill::kDense, KernelFill::kSparse, KernelFill::kInterval}) {
    const std::vector<std::uint64_t> a = KernelWords(kWords, fill, rng);
    const std::vector<std::uint64_t> b =
        KernelWords(kWords, KernelFill::kDense, rng);
    std::vector<Weight> weights(kWords * 64);
    for (Weight& w : weights) {
      w = 1 + rng.UniformInt(1000);
    }
    std::vector<Weight> block_sums(kWords, 0);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      block_sums[i / 64] += weights[i];
    }

    struct Row {
      const char* kernel;
      double scalar_ns;
      double simd_ns;
    };
    std::vector<Row> rows;

    // Counting kernels: identical results are asserted, not assumed.
    std::size_t scalar_count = 0;
    std::size_t simd_count = 0;
    rows.push_back({"popcount",
                    TimePerCallNs(kIters,
                                  [&] {
                                    scalar_count = scalar.popcount_words(
                                        a.data(), kWords);
                                  }),
                    TimePerCallNs(kIters, [&] {
                      simd_count = active.popcount_words(a.data(), kWords);
                    })});
    if (scalar_count != simd_count) {
      return Status::Internal("kernel dispatch mismatch: popcount");
    }
    rows.push_back({"and_popcount",
                    TimePerCallNs(kIters,
                                  [&] {
                                    scalar_count = scalar.and_popcount_words(
                                        a.data(), b.data(), kWords);
                                  }),
                    TimePerCallNs(kIters, [&] {
                      simd_count = active.and_popcount_words(
                          a.data(), b.data(), kWords);
                    })});
    if (scalar_count != simd_count) {
      return Status::Internal("kernel dispatch mismatch: and_popcount");
    }

    kernels::CountAndWeight sw;
    kernels::CountAndWeight vw;
    rows.push_back({"masked_count_weight",
                    TimePerCallNs(kIters,
                                  [&] {
                                    sw = scalar.masked_count_weight(
                                        a.data(), b.data(), kWords,
                                        weights.data(), block_sums.data());
                                  }),
                    TimePerCallNs(kIters, [&] {
                      vw = active.masked_count_weight(a.data(), b.data(),
                                                      kWords, weights.data(),
                                                      block_sums.data());
                    })});
    if (sw.count != vw.count || sw.weight != vw.weight) {
      return Status::Internal("kernel dispatch mismatch: masked_count_weight");
    }
    if (fill == KernelFill::kDense) {
      fused_dense_speedup = rows.back().scalar_ns / rows.back().simd_ns;
    }
    rows.push_back({"count_weight",
                    TimePerCallNs(kIters,
                                  [&] {
                                    sw = scalar.count_weight(
                                        a.data(), kWords, weights.data(),
                                        block_sums.data());
                                  }),
                    TimePerCallNs(kIters, [&] {
                      vw = active.count_weight(a.data(), kWords,
                                               weights.data(),
                                               block_sums.data());
                    })});
    if (sw.count != vw.count || sw.weight != vw.weight) {
      return Status::Internal("kernel dispatch mismatch: count_weight");
    }

    // Mutating kernels: dst op= src is idempotent after the warm call for
    // AND/OR, so repeated application times the kernel, not fresh copies.
    std::vector<std::uint64_t> dst = b;
    rows.push_back({"and_words",
                    TimePerCallNs(kIters,
                                  [&] {
                                    scalar.and_words(dst.data(), a.data(),
                                                     kWords);
                                  }),
                    TimePerCallNs(kIters, [&] {
                      active.and_words(dst.data(), a.data(), kWords);
                    })});
    rows.push_back({"or_words",
                    TimePerCallNs(kIters,
                                  [&] {
                                    scalar.or_words(dst.data(), a.data(),
                                                    kWords);
                                  }),
                    TimePerCallNs(kIters, [&] {
                      active.or_words(dst.data(), a.data(), kWords);
                    })});

    for (const Row& row : rows) {
      table.AddRow({row.kernel, KernelFillName(fill),
                    FormatDouble(row.scalar_ns, 0),
                    FormatDouble(row.simd_ns, 0),
                    FormatDouble(row.scalar_ns / row.simd_ns, 2) + "x"});
      const std::string prefix = std::string("kernels/micro/") + row.kernel +
                                 "/" + KernelFillName(fill);
      PushWallRow(ctx, prefix + "/scalar_ns", "synthetic", kWords,
                  row.scalar_ns);
      PushWallRow(ctx, prefix + "/dispatched_ns", "synthetic", kWords,
                  row.simd_ns);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

#ifdef NDEBUG
  constexpr bool kOptimized = true;
#else
  constexpr bool kOptimized = false;
#endif
  const bool simd_active =
      kernels::CpuSupports(kernels::Mode::kAvx2) &&
      kernels::ActiveMode() != kernels::Mode::kScalar;
  if (!kOptimized || SanitizedBuild() || !simd_active) {
    std::printf("kernel speedup gate skipped (%s): the 1.5x fused-kernel "
                "target assumes an optimized, unsanitized binary with a "
                "vector implementation active\n\n",
                !kOptimized ? "debug build"
                            : (SanitizedBuild() ? "sanitized build"
                                                : "scalar kernels active"));
    return Status::OK();
  }
  if (fused_dense_speedup < 1.5) {
    return Status::Internal(
        "kernel SLO violated: fused masked_count_weight on dense rows is " +
        FormatDouble(fused_dense_speedup, 2) + "x scalar, below the 1.5x "
        "target");
  }
  std::printf("fused masked_count_weight >=1.5x scalar on dense rows (%sx): "
              "OK\n\n",
              FormatDouble(fused_dense_speedup, 2).c_str());
  return Status::OK();
}

/// (b) Parallel closure build at catalog scale: a serial and an 8-way
/// build of the same DAG must produce byte-identical compressed encodings
/// (always asserted), and the parallel build must be >=3x faster when the
/// machine can actually show it (optimized, unsanitized, full scale, >=8
/// cores). A smaller dense-closure pair rides along for the dense path.
Status KernelsParallelBuild(SuiteContext& ctx) {
  const std::size_t n = ctx.smoke ? 100'000 : 1'000'000;
  Digraph g = GenerateCatalogDag(BigCatalogParams(n));

  WallTimer serial_timer;
  CompressedClosure::BuildOptions serial_options;
  serial_options.threads = 1;
  const CompressedClosure serial(g, serial_options);
  const double serial_ms = serial_timer.ElapsedMillis();

  WallTimer parallel_timer;
  CompressedClosure::BuildOptions parallel_options;
  parallel_options.threads = 8;
  const CompressedClosure parallel(g, parallel_options);
  const double parallel_ms = parallel_timer.ElapsedMillis();

  if (!serial.IdenticalEncoding(parallel)) {
    return Status::Internal(
        "parallel compressed build is not byte-identical to the serial "
        "build at " + FormatWithCommas(n) + " nodes");
  }
  const double speedup = serial_ms / parallel_ms;
  PushWallRow(ctx, "kernels/build/compressed/serial_ms", "synthetic", n,
              serial_ms);
  PushWallRow(ctx, "kernels/build/compressed/parallel8_ms", "synthetic", n,
              parallel_ms);
  PushWallRow(ctx, "kernels/build/compressed/speedup", "synthetic", n,
              speedup);

  // Dense pair at a size where O(n²/8) rows are still cheap.
  const std::size_t dense_n = 8'192;
  Rng rng(929);
  const Digraph dense_g = RandomDag(dense_n, rng, 0.25);
  ReachabilityOptions dense_serial_options;
  dense_serial_options.closure = ReachabilityOptions::Closure::kDense;
  dense_serial_options.build_threads = 1;
  WallTimer dense_serial_timer;
  const ReachabilityIndex dense_serial(dense_g, dense_serial_options);
  const double dense_serial_ms = dense_serial_timer.ElapsedMillis();
  ReachabilityOptions dense_parallel_options;
  dense_parallel_options.closure = ReachabilityOptions::Closure::kDense;
  dense_parallel_options.build_threads = 8;
  WallTimer dense_parallel_timer;
  const ReachabilityIndex dense_parallel(dense_g, dense_parallel_options);
  const double dense_parallel_ms = dense_parallel_timer.ElapsedMillis();
  for (NodeId u = 0; u < dense_n; ++u) {
    if (!(dense_serial.ClosureRow(u) == dense_parallel.ClosureRow(u))) {
      return Status::Internal(
          "parallel dense closure row " + std::to_string(u) +
          " differs from the serial build");
    }
  }
  PushWallRow(ctx, "kernels/build/dense/serial_ms", "synthetic", dense_n,
              dense_serial_ms);
  PushWallRow(ctx, "kernels/build/dense/parallel8_ms", "synthetic", dense_n,
              dense_parallel_ms);

  AsciiTable table({"Build", "#nodes", "Serial ms", "8-thread ms",
                    "Speedup"});
  table.AddRow({"compressed", FormatWithCommas(n),
                FormatDouble(serial_ms, 0), FormatDouble(parallel_ms, 0),
                FormatDouble(speedup, 2) + "x"});
  table.AddRow({"dense", FormatWithCommas(dense_n),
                FormatDouble(dense_serial_ms, 0),
                FormatDouble(dense_parallel_ms, 0),
                FormatDouble(dense_serial_ms / dense_parallel_ms, 2) + "x"});
  std::printf("[parallel closure builds: byte-identical encodings "
              "verified]\n%s\n",
              table.ToString().c_str());

#ifdef NDEBUG
  constexpr bool kOptimized = true;
#else
  constexpr bool kOptimized = false;
#endif
  const unsigned cores = std::thread::hardware_concurrency();
  if (!kOptimized || SanitizedBuild() || ctx.smoke || cores < 8) {
    std::printf("parallel build gate skipped (%s, %u core(s)): the 3x "
                "target is defined for an optimized binary at 1M nodes on "
                ">=8 cores\n\n",
                !kOptimized ? "debug build"
                            : (SanitizedBuild()
                                   ? "sanitized build"
                                   : (ctx.smoke ? "smoke scale"
                                                : "too few cores")),
                cores);
    return Status::OK();
  }
  if (speedup < 3.0) {
    return Status::Internal(
        "parallel build SLO violated: 8-thread compressed build is " +
        FormatDouble(speedup, 2) + "x serial at " + FormatWithCommas(n) +
        " nodes, below the 3x target");
  }
  std::printf("8-thread compressed build >=3x serial at %s nodes (%sx): "
              "OK\n\n",
              FormatWithCommas(n).c_str(),
              FormatDouble(speedup, 2).c_str());
  return Status::OK();
}

Status SuiteKernels(SuiteContext& ctx) {
  PrintConfig(ctx,
              "kernels: SIMD dispatch micro rows, parallel closure builds "
              "(PR 10)");
  AIGS_RETURN_NOT_OK(KernelsMicro(ctx));
  AIGS_RETURN_NOT_OK(KernelsParallelBuild(ctx));
  return Status::OK();
}

// ---- registry --------------------------------------------------------------

std::function<int(SuiteContext&)> Wrap(Status (*fn)(SuiteContext&)) {
  return [fn](SuiteContext& ctx) {
    const Status status = fn(ctx);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  };
}

}  // namespace

const std::vector<Suite>& AllSuites() {
  static const std::vector<Suite>* suites = new std::vector<Suite>{
      {"table2", "dataset statistics (Table II)", Wrap(SuiteTable2)},
      {"table3", "cost under the real distribution (Table III)",
       Wrap(SuiteTable3)},
      {"table4", "probability settings on Amazon (Table IV)",
       Wrap(SuiteTable4)},
      {"table5", "probability settings on ImageNet (Table V)",
       Wrap(SuiteTable5)},
      {"fig4", "online distribution learning (Fig. 4)", Wrap(SuiteFig4)},
      {"fig5", "cost vs Zipf parameter (Fig. 5)", Wrap(SuiteFig5)},
      {"fig6", "running time by target depth (Fig. 6)", Wrap(SuiteFig6)},
      {"caigs", "cost-sensitive greedy under priced questions",
       Wrap(SuiteCaigs)},
      {"batched", "batched questions trade-off (§III-E)",
       Wrap(SuiteBatched)},
      {"noise", "noisy answers and majority voting", Wrap(SuiteNoise)},
      {"worstcase", "average vs worst-case objectives", Wrap(SuiteWorstcase)},
      {"scaling", "cost growth with hierarchy size", Wrap(SuiteScaling)},
      {"ablation", "greedy design-choice ablations (§IV)",
       Wrap(SuiteAblation)},
      {"approx_ratio", "empirical approximation ratios vs the DP optimum",
       Wrap(SuiteApproxRatio)},
      {"example2", "vehicle hierarchy worked example", Wrap(SuiteExample2)},
      {"plan_cache", "warm-prefix plan-cache throughput (PR 4)",
       Wrap(SuitePlanCache)},
      {"epoch_lifecycle",
       "cross-epoch migration, warm publish, rolling plan keys (PR 5)",
       Wrap(SuiteEpochLifecycle)},
      {"durability",
       "durable session store: WAL overhead, crash recovery (PR 7)",
       Wrap(SuiteDurability)},
      {"network",
       "TCP front end: wire identity, loadgen SLOs, shard scaling (PR 8)",
       Wrap(SuiteNetwork)},
      {"bigcatalog",
       "compressed reachability: storage identity, million-node gate (PR 9)",
       Wrap(SuiteBigcatalog)},
      {"kernels",
       "SIMD kernel dispatch micro rows, parallel closure builds (PR 10)",
       Wrap(SuiteKernels)},
  };
  return *suites;
}

const Suite* FindSuite(const std::string& name) {
  for (const Suite& suite : AllSuites()) {
    if (suite.name == name) {
      return &suite;
    }
  }
  return nullptr;
}

}  // namespace aigs::bench
