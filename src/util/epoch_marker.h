// O(1)-reset visited marker for repeated graph traversals. A BFS that runs
// thousands of times per evaluation cannot afford an O(n) memset per run;
// EpochMarker resets by bumping a generation counter instead.
#ifndef AIGS_UTIL_EPOCH_MARKER_H_
#define AIGS_UTIL_EPOCH_MARKER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace aigs {

/// Tracks a "visited" flag per index with O(1) bulk reset.
class EpochMarker {
 public:
  EpochMarker() = default;
  explicit EpochMarker(std::size_t size) : marks_(size, 0) {}

  /// Number of tracked indices.
  std::size_t size() const { return marks_.size(); }

  /// Grows (or shrinks) the tracked index range; new entries are unvisited.
  void Resize(std::size_t size) { marks_.resize(size, 0); }

  /// Invalidates all marks in O(1) (amortized: wraps around every 2^32-1
  /// epochs with one O(n) cleanup).
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(marks_.begin(), marks_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Marks index i visited in the current epoch.
  void Visit(std::size_t i) {
    AIGS_DCHECK(i < marks_.size());
    marks_[i] = epoch_;
  }

  /// True iff i was visited since the last NewEpoch().
  bool IsVisited(std::size_t i) const {
    AIGS_DCHECK(i < marks_.size());
    return marks_[i] == epoch_;
  }

  /// Marks i and reports whether it was already visited (test-and-set).
  bool VisitOnce(std::size_t i) {
    if (IsVisited(i)) {
      return false;
    }
    Visit(i);
    return true;
  }

 private:
  std::vector<std::uint32_t> marks_;
  std::uint32_t epoch_ = 1;
};

}  // namespace aigs

#endif  // AIGS_UTIL_EPOCH_MARKER_H_
