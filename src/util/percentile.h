// Nearest-rank percentile, shared by the loadgen latency report and the
// bench suites' wall-time rows.
//
// Semantics (the classic nearest-rank definition): for a quantile q over n
// samples, rank = clamp(⌈q·n⌉, 1, n) and the result is the rank-th smallest
// sample — always an actual sample, never an interpolation, so p50/p99 rows
// are reproducible integers when the inputs are.
#ifndef AIGS_UTIL_PERCENTILE_H_
#define AIGS_UTIL_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace aigs {

/// Nearest-rank quantile of an ascending-sorted sample span. Returns T{}
/// when empty.
template <typename T>
T NearestRankSorted(std::span<const T> sorted, double quantile) {
  if (sorted.empty()) {
    return T{};
  }
  const double scaled = quantile * static_cast<double>(sorted.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(scaled));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

/// Nearest-rank quantile of an unsorted sample set (sorts a copy).
template <typename T>
T NearestRank(std::vector<T> samples, double quantile) {
  std::sort(samples.begin(), samples.end());
  return NearestRankSorted(std::span<const T>(samples), quantile);
}

}  // namespace aigs

#endif  // AIGS_UTIL_PERCENTILE_H_
