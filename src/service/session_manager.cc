#include "service/session_manager.h"

#include <chrono>

namespace aigs {

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)),
      shards_(options_.num_shards == 0 ? 1 : options_.num_shards) {}

std::uint64_t SessionManager::NowMillis() const {
  if (options_.clock_millis) {
    return options_.clock_millis();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SessionId SessionManager::Insert(std::shared_ptr<ServiceSession> session) {
  AIGS_CHECK(session != nullptr);
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now = NowMillis();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sessions.emplace(id, Entry{std::move(session), now});
  return id;
}

Status SessionManager::InsertWithId(SessionId id,
                                    std::shared_ptr<ServiceSession> session) {
  AIGS_CHECK(session != nullptr);
  if (id == 0) {
    return Status::FailedPrecondition("session ids start at 1");
  }
  const std::uint64_t now = NowMillis();
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] =
        shard.sessions.emplace(id, Entry{std::move(session), now});
    (void)it;
    if (!inserted) {
      return Status::FailedPrecondition("session id " + std::to_string(id) +
                                        " is already live");
    }
  }
  ReserveIds(id + 1);
  return Status::OK();
}

void SessionManager::ReserveIds(SessionId next_id) {
  SessionId current = next_id_.load(std::memory_order_relaxed);
  while (current < next_id &&
         !next_id_.compare_exchange_weak(current, next_id,
                                         std::memory_order_relaxed)) {
  }
}

StatusOr<std::shared_ptr<ServiceSession>> SessionManager::Find(SessionId id) {
  const std::uint64_t now = NowMillis();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  if (options_.ttl_millis != 0 &&
      now - it->second.last_touch_millis > options_.ttl_millis) {
    shard.sessions.erase(it);
    return Status::NotFound("session " + std::to_string(id) +
                            " expired (idle past TTL)");
  }
  it->second.last_touch_millis = now;
  return it->second.session;
}

std::shared_ptr<ServiceSession> SessionManager::Peek(SessionId id) const {
  const std::uint64_t now = NowMillis();
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    return nullptr;
  }
  if (options_.ttl_millis != 0 &&
      now - it->second.last_touch_millis > options_.ttl_millis) {
    return nullptr;  // expired; left for Find/EvictExpired to reap
  }
  return it->second.session;
}

Status SessionManager::Erase(SessionId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.sessions.erase(id) == 0) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  return Status::OK();
}

std::size_t SessionManager::EvictExpired() {
  if (options_.ttl_millis == 0) {
    return 0;
  }
  const std::uint64_t now = NowMillis();
  std::size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      if (now - it->second.last_touch_millis > options_.ttl_millis) {
        it = shard.sessions.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::size_t SessionManager::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.sessions.size();
  }
  return total;
}

std::map<std::uint64_t, std::size_t> SessionManager::SessionsByEpoch() const {
  std::map<std::uint64_t, std::size_t> counts;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [id, entry] : shard.sessions) {
      if (entry.session != nullptr) {
        // The atomic epoch mirror, not the snapshot pointer: a concurrent
        // migration may be rebinding the snapshot under the session mutex.
        ++counts[entry.session->epoch.load(std::memory_order_relaxed)];
      }
    }
  }
  return counts;
}

std::vector<std::pair<SessionId, std::shared_ptr<ServiceSession>>>
SessionManager::SnapshotSessions() const {
  std::vector<std::pair<SessionId, std::shared_ptr<ServiceSession>>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.reserve(out.size() + shard.sessions.size());
    for (const auto& [id, entry] : shard.sessions) {
      out.emplace_back(id, entry.session);
    }
  }
  return out;
}

std::vector<SessionManager::IdleEntry> SessionManager::SnapshotWithIdle()
    const {
  const std::uint64_t now = NowMillis();
  std::vector<IdleEntry> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.reserve(out.size() + shard.sessions.size());
    for (const auto& [id, entry] : shard.sessions) {
      out.push_back(IdleEntry{
          id, entry.session,
          now > entry.last_touch_millis ? now - entry.last_touch_millis
                                        : 0});
    }
  }
  return out;
}

}  // namespace aigs
