// Exact policy behavior on canonical structures — closed-form costs that
// pin down the algorithms' mechanics (binary search on chains, linear scans
// on stars, dispatch facades).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/migs.h"
#include "baselines/top_down.h"
#include "baselines/wigs.h"
#include "core/aigs.h"
#include "eval/evaluator.h"
#include "graph/generators.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::RunAllTargets;
using testing::WeightedAverage;

TEST(WigsOnChain, BinarySearchCostsExactlyLogN) {
  // A path is a fully ordered set: WIGS's heavy path is the whole chain and
  // every target costs exactly ⌈log2 n⌉ questions.
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const Hierarchy h = MustBuild(PathGraph(n));
    WigsTreePolicy wigs(h);
    const auto costs = RunAllTargets(wigs, h);
    const auto expected = static_cast<std::uint64_t>(
        std::ceil(std::log2(static_cast<double>(n))));
    for (NodeId t = 0; t < n; ++t) {
      EXPECT_EQ(costs[t], expected) << "n=" << n << " target=" << t;
    }
  }
}

TEST(GreedyOnChain, HalvingMatchesBinarySearchDepth) {
  for (const std::size_t n : {8u, 16u, 64u}) {
    const Hierarchy h = MustBuild(PathGraph(n));
    const Distribution equal = EqualDistribution(n);
    GreedyTreePolicy greedy(h, equal);
    const EvalStats stats = EvaluateExact(greedy, h, equal);
    const auto log_n = std::log2(static_cast<double>(n));
    EXPECT_LE(stats.max_cost, static_cast<std::uint64_t>(
                                  std::ceil(log_n)) +
                                  1);
    EXPECT_GE(stats.expected_cost, log_n - 1);  // entropy lower bound
  }
}

TEST(TopDownOnChain, PaysDepthPlusOne) {
  const std::size_t n = 10;
  const Hierarchy h = MustBuild(PathGraph(n));
  TopDownPolicy top_down(h);
  const auto costs = RunAllTargets(top_down, h);
  for (NodeId t = 0; t < n; ++t) {
    // t yes-answers to walk down, plus one no (absent for the deepest node,
    // which has no children).
    const std::uint64_t expected = t == n - 1 ? t : t + 1;
    EXPECT_EQ(costs[t], expected) << t;
  }
}

TEST(GreedyOnStar, LinearScanIsForcedByStructure) {
  // Root with n-1 unit-weight leaves: every question isolates one leaf, so
  // the k-th-probed leaf costs k questions and the root costs n-1.
  const std::size_t n = 5;
  const Hierarchy h = MustBuild(StarGraph(n));
  const Distribution equal = EqualDistribution(n);
  GreedyNaivePolicy greedy(h, equal);
  const auto costs = RunAllTargets(greedy, h);
  EXPECT_EQ(costs[0], n - 1);  // root: all leaves answered no
  std::vector<std::uint64_t> leaf_costs(costs.begin() + 1, costs.end());
  std::sort(leaf_costs.begin(), leaf_costs.end());
  for (std::size_t k = 0; k < leaf_costs.size(); ++k) {
    EXPECT_EQ(leaf_costs[k], k + 1);
  }
  EXPECT_DOUBLE_EQ(WeightedAverage(costs, equal), 14.0 / 5.0);
}

TEST(GreedyOnStar, SkewProbesPopularLeavesFirst) {
  const Hierarchy h = MustBuild(StarGraph(4));
  const Distribution dist = testing::MustDist({1, 1, 1, 97});
  GreedyNaivePolicy greedy(h, dist);
  const auto costs = RunAllTargets(greedy, h);
  EXPECT_EQ(costs[3], 1u);  // the 97% leaf is probed first
}

TEST(MigsOnStar, BatchesOfFourCoverChildren) {
  const std::size_t n = 10;  // root + 9 leaves
  const Hierarchy h = MustBuild(StarGraph(n));
  MigsPolicy migs(h);  // default: 4 choices per question
  ExactOracle oracle(h.reach(), 0);  // target = root → all "none of these"
  auto session = migs.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, 0u);
  EXPECT_EQ(r.choice_queries, 3u);      // 4 + 4 + 1 choices
  EXPECT_EQ(r.choices_read, 9u);
}

TEST(WigsDagOnDiamonds, HandlesMultiParentCandidates) {
  const Hierarchy h = MustBuild(DiamondChain(5));
  WigsDagPolicy wigs(h);
  const auto costs = RunAllTargets(wigs, h);
  const Distribution equal = EqualDistribution(h.NumNodes());
  // Sanity: far below the TopDown cost on the same structure.
  TopDownPolicy top_down(h);
  const auto td_costs = RunAllTargets(top_down, h);
  EXPECT_LE(WeightedAverage(costs, equal),
            WeightedAverage(td_costs, equal) + 1e-9);
}

TEST(Facades, DispatchOnHierarchyKind) {
  Rng rng(1);
  const Hierarchy tree = MustBuild(RandomTree(20, rng));
  const Hierarchy dag = MustBuild(RandomDag(20, rng, 0.5));
  const Distribution equal20 = EqualDistribution(20);
  const Distribution equal_dag = EqualDistribution(dag.NumNodes());

  EXPECT_EQ(MakeGreedyPolicy(tree, equal20)->name(), "GreedyTree");
  EXPECT_EQ(MakeGreedyPolicy(dag, equal_dag)->name(), "GreedyDAG");
  EXPECT_EQ(MakeWigsPolicy(tree)->name(), "WIGS");
  EXPECT_EQ(MakeWigsPolicy(dag)->name(), "WIGS");
}

TEST(Hierarchy, MultiRootInputGetsDummyRoot) {
  Digraph g;
  g.AddNodes(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);  // second root at node 2
  auto h = Hierarchy::Build(std::move(g));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->NumNodes(), 5u);
  EXPECT_EQ(h->graph().Label(h->root()), "<root>");
  // Policies work across the dummy root.
  const Distribution equal = EqualDistribution(5);
  GreedyTreePolicy greedy(*h, equal);
  RunAllTargets(greedy, *h);
}

TEST(Evaluator, CanSkipZeroWeightTargets) {
  const Hierarchy h = MustBuild(PathGraph(15));
  const Distribution point = PointMassDistribution(15, 14);  // deepest leaf
  GreedyTreePolicy greedy(h, point);
  EvalOptions options;
  options.include_zero_weight_targets = false;
  const EvalStats stats = EvaluateExact(greedy, h, point, options);
  EXPECT_EQ(stats.num_searches, 1u);
  // All mass on the deepest leaf: the descent reaches the leaf's parent and
  // Algorithm 4 line 8 breaks the |2p̃−p̃(r)| tie toward the shallower node,
  // so the search asks the parent (yes) and then the leaf (yes).
  EXPECT_DOUBLE_EQ(stats.expected_cost, 2.0);
}

TEST(DeepChain, PoliciesScaleToHeight10k) {
  // Smoke: no recursion, no quadratic blowup on a 10k-deep chain.
  const std::size_t n = 10'000;
  const Hierarchy h = MustBuild(PathGraph(n));
  const Distribution equal = EqualDistribution(n);
  GreedyTreePolicy greedy(h, equal);
  ExactOracle oracle(h.reach(), static_cast<NodeId>(n - 1));
  auto session = greedy.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, n - 1);
  EXPECT_LE(r.reach_queries, 15u);  // ~log2(10000)

  WigsTreePolicy wigs(h);
  auto wigs_session = wigs.NewSession();
  const SearchResult w = RunSearch(*wigs_session, oracle);
  EXPECT_EQ(w.target, n - 1);
  EXPECT_LE(w.reach_queries, 15u);
}

TEST(WideStar, PoliciesHandleFanout5k) {
  const std::size_t n = 5'000;
  const Hierarchy h = MustBuild(StarGraph(n));
  const Distribution equal = EqualDistribution(n);
  // Target in the middle of the fanout; policies must not degrade worse
  // than a linear scan.
  ExactOracle oracle(h.reach(), 2'500);
  GreedyTreePolicy greedy(h, equal);
  auto session = greedy.NewSession();
  const SearchResult r = RunSearch(*session, oracle);
  EXPECT_EQ(r.target, 2'500u);
  EXPECT_LE(r.reach_queries, n);
}

}  // namespace
}  // namespace aigs
