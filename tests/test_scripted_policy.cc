#include "eval/scripted_policy.h"

#include <gtest/gtest.h>

#include "data/builtin.h"
#include "eval/runner.h"
#include "graph/generators.h"
#include "oracle/oracle.h"
#include "tests/test_support.h"
#include "util/rng.h"

namespace aigs {
namespace {

using testing::MustBuild;
using testing::RunAllTargets;

TEST(ScriptedPolicy, FollowsScriptOrder) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  const ScriptedPolicy policy(
      h, {nodes.car, nodes.nissan, nodes.maxima, nodes.sentra, nodes.honda,
          nodes.mercedes});
  ExactOracle oracle(h.reach(), nodes.honda);
  auto session = policy.NewSession();
  std::vector<NodeId> asked;
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      EXPECT_EQ(q.node, nodes.honda);
      break;
    }
    asked.push_back(q.node);
    session->OnReach(q.node, oracle.Reach(q.node));
  }
  // Car yes; Nissan no; Maxima/Sentra skipped (already excluded);
  // Honda yes — done: candidates = {Honda}.
  EXPECT_EQ(asked, (std::vector<NodeId>{nodes.car, nodes.nissan,
                                        nodes.honda}));
}

TEST(ScriptedPolicy, SkipsQuestionsWithKnownAnswers) {
  // Path 0 -> 1 -> 2 -> 3; script asks node 1 twice in a row — the second
  // occurrence is uninformative and must be skipped, as must node 2 after a
  // no-answer to it already excluded 3.
  const Hierarchy h = MustBuild(PathGraph(4));
  const ScriptedPolicy policy(h, {1, 1, 2, 2, 3, 1});
  ExactOracle oracle(h.reach(), 1);
  auto session = policy.NewSession();
  std::size_t questions = 0;
  for (;;) {
    const Query q = session->Next();
    if (q.kind == Query::Kind::kDone) {
      EXPECT_EQ(q.node, 1u);
      break;
    }
    ++questions;
    session->OnReach(q.node, oracle.Reach(q.node));
  }
  // Asked: 1 (yes), 2 (no); candidates = {1}; 2, 3 and the repeat of 1 are
  // all skipped.
  EXPECT_EQ(questions, 2u);
}

TEST(ScriptedPolicy, IdentifiesAllTargetsWithCompleteScript) {
  Rng rng(1);
  const Hierarchy h = MustBuild(RandomDag(25, rng, 0.4));
  // Scripting every node (here in reverse topological order) always pins
  // down the target: any two candidates are separated by asking either one.
  std::vector<NodeId> script(h.graph().TopologicalOrder().rbegin(),
                             h.graph().TopologicalOrder().rend());
  const ScriptedPolicy policy(h, script);
  RunAllTargets(policy, h);  // fatally checks identification
}

TEST(ScriptedPolicy, Example2ScriptsAreExactlyReproducible) {
  VehicleNodes nodes;
  const Hierarchy h = MustBuild(BuildVehicleHierarchy(&nodes));
  const Distribution dist = VehicleDistribution();
  const ScriptedPolicy wigs_like(
      h, {nodes.nissan, nodes.maxima, nodes.sentra, nodes.car, nodes.honda,
          nodes.mercedes});
  const auto costs = RunAllTargets(wigs_like, h);
  double total = 0;
  for (NodeId v = 0; v < h.NumNodes(); ++v) {
    total += static_cast<double>(dist.WeightOf(v) * costs[v]);
  }
  EXPECT_DOUBLE_EQ(total, 260.0);
}

}  // namespace
}  // namespace aigs
