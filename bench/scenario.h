// The unified bench harness's scenario layer: one struct describes a
// (dataset × distribution × policy × cost model × threads) evaluation cell,
// one function runs it through the registry + the sharded Evaluator, and
// uniform JSON/CSV emitters make every suite's output machine-readable.
//
// Spec string syntax (ad-hoc scenarios, `aigs_bench --scenario`):
//   "dataset=amazon;scale=0.25;dist=zipf:2;policy=batched:k=8;
//    cost=uniform:1:10;reps=3;samples=0;threads=4;seed=7"
#ifndef AIGS_BENCH_SCENARIO_H_
#define AIGS_BENCH_SCENARIO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "data/datasets.h"
#include "eval/evaluator.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"

namespace aigs::bench {

/// One evaluation cell. Every former bench_* table row is one of these.
struct ScenarioSpec {
  /// Display label; empty = the policy spec.
  std::string label;
  /// amazon | imagenet | vehicle | fig2 | fig3 (builtins ignore `scale`).
  std::string dataset = "amazon";
  /// Fraction of the paper-scale dataset (1.0 = Table II size).
  double scale = 0.25;
  /// real | equal | uniform | exponential | zipf[:a]
  std::string distribution = "real";
  /// PolicyRegistry spec, e.g. "greedy" or "migs:choices=0".
  std::string policy = "greedy";
  /// unit | uniform:lo:hi (random integer prices in [lo, hi]) |
  /// depth:lo:hi (deterministic per-node prices growing with node depth —
  /// the Szyfelbein cost-generalized setting) |
  /// prices:p0+p1+... (explicit per-node price vector, one entry per node) |
  /// prices:hash:lo:hi[:seed] (deterministic pseudo-random per-node prices
  /// in [lo, hi] — arbitrary-price CAIGS, guardable in the baseline).
  std::string cost_model = "unit";
  /// auto | dense | compressed — reachability storage for the dataset's
  /// hierarchy. auto keeps the defaults (Euler on trees, dense closure at
  /// paper scale); dense/compressed force that closure storage on every
  /// shape, trees included, so the backend=closure|compressed policy
  /// options have storage to run on.
  std::string reach = "auto";
  /// exact | noisy:p | persistent:p — the oracle answering the questions.
  /// noisy flips each answer independently with probability p; persistent
  /// freezes each node's (possibly flipped) answer for the whole search
  /// (Dereniowski-style noise that majority voting cannot fix). Non-exact
  /// oracles report accuracy instead of fatally requiring correctness.
  std::string oracle = "exact";
  /// Repetitions for randomized distributions / cost models (averaged).
  std::size_t reps = 1;
  /// Base seed; rep r derives its own stream.
  std::uint64_t seed = 1000;
  /// 0 = exact evaluation over all targets; else Monte-Carlo sample count.
  std::size_t samples = 0;
  /// Evaluator worker count (0 = shared default pool, 1 = serial).
  int threads = 0;
  /// Reachability-index build worker count (0 = hardware concurrency,
  /// 1 = serial). The built index is bit-identical either way, so this is
  /// purely a build-latency knob — it is excluded from the dataset cache
  /// key and not emitted in result rows.
  int build_threads = 0;
  /// Drive every search through Engine sessions (Open/Ask/Answer/Close on a
  /// published snapshot) instead of in-process Policy::NewSession calls.
  /// Cost aggregates are bit-identical to the in-process path by
  /// construction; this knob exists so the bench exercises the service
  /// stack — including the plan cache — under the regression guard.
  bool service = false;
  /// Engine plan cache on/off (service path only). With the cache on, the
  /// run reports the measured hit rate in `ScenarioResult::cache_hit_rate`.
  bool plan_cache = true;
};

/// Averaged-over-reps outcome of one scenario.
struct ScenarioResult {
  ScenarioSpec spec;
  std::string policy_name;  // resolved Policy::name()
  std::size_t nodes = 0;
  double expected_cost = 0;
  double expected_priced_cost = 0;
  double expected_reach_queries = 0;
  double expected_rounds = 0;
  std::uint64_t max_cost = 0;  // max over reps
  /// Fraction of searches identifying the true target (1.0 under the exact
  /// oracle; the headline metric of noisy scenarios). Averaged over reps.
  double accuracy = 1.0;
  // Weighted quantiles from the last rep (exact mode only; 0 otherwise).
  std::uint32_t median = 0;
  std::uint32_t p90 = 0;
  std::uint32_t p99 = 0;
  double wall_ms = 0;  // total evaluation wall time across reps
  /// Plan-cache hit rate over the run (service path with the cache on;
  /// 0 otherwise). Averaged over reps; informational, never guarded —
  /// concurrent sessions race their misses, so the exact split is not
  /// deterministic under threads > 1.
  double cache_hit_rate = 0;
};

/// Builds each (dataset, scale) pair at most once per process.
class DatasetCache {
 public:
  /// Returns a cached dataset; builds it on first use. The pointer stays
  /// valid for the cache's lifetime. `reach` = auto|dense|compressed (a
  /// ScenarioSpec::reach value; distinct storages cache separately).
  /// `build_threads` shards the closure build (0 = hardware); the built
  /// index is bit-identical regardless, so it does not key the cache.
  StatusOr<const Dataset*> Get(const std::string& name, double scale,
                               const std::string& reach = "auto",
                               int build_threads = 0);

 private:
  std::map<std::tuple<std::string, int, std::string>,
           std::unique_ptr<Dataset>>
      cache_;
};

/// Materializes a distribution spec ("real" reads the dataset's own).
StatusOr<Distribution> MakeScenarioDistribution(const std::string& spec,
                                                const Dataset& dataset,
                                                Rng& rng);

/// Materializes a cost-model spec; returns nullptr (unit prices) for "unit".
/// "depth:lo:hi" prices a question by its node's depth — c(v) = lo +
/// min(Depth(v), hi − lo), deterministic and per-node: the cost-generalized
/// setting of Szyfelbein (arXiv:2603.17916), where deeper (more specific)
/// questions cost more to verify.
StatusOr<std::unique_ptr<CostModel>> MakeScenarioCostModel(
    const std::string& spec, const Hierarchy& hierarchy, Rng& rng);

/// Runs one scenario end to end (registry lookup, reps, aggregation).
StatusOr<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                     DatasetCache& cache);

/// Parses the `key=value;key=value` ad-hoc scenario syntax.
StatusOr<ScenarioSpec> ParseScenarioSpec(const std::string& text);

/// One JSON object per result (JSON-lines friendly).
std::string ScenarioResultToJson(const ScenarioResult& result);

/// Uniform CSV schema shared by every suite.
std::vector<std::string> ScenarioCsvHeader();
std::vector<std::string> ScenarioCsvRow(const ScenarioResult& result);

/// Regression guard: compares freshly-run results against a committed
/// JSON-lines baseline (a previous `--json` dump). Only deterministic cost
/// aggregates are compared — expected_cost, expected_priced_cost,
/// expected_reach_queries, expected_rounds, max_cost — never wall time, so
/// the guard is stable across hardware. Fails listing every drifted,
/// missing, or stale scenario label; regenerate the baseline with the same
/// run that produced it (e.g. `aigs_bench --smoke --json <baseline>`).
/// `require_complete` additionally fails on baseline labels the run never
/// produced — set it when the run covers the same suite set as the
/// baseline (CI smoke), clear it to spot-check a subset (`--scenario`).
Status CheckAgainstBaseline(const std::vector<ScenarioResult>& results,
                            const std::string& baseline_path,
                            bool require_complete);

}  // namespace aigs::bench

#endif  // AIGS_BENCH_SCENARIO_H_
