// Per-question prices for the cost-sensitive AIGS extension (§III-D): easy
// questions are cheap, hard questions expensive. Unit prices recover plain
// AIGS.
#ifndef AIGS_ORACLE_COST_MODEL_H_
#define AIGS_ORACLE_COST_MODEL_H_

#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace aigs {

/// Integer price c(v) >= 1 per query node.
class CostModel {
 public:
  /// Unit prices (plain AIGS).
  static CostModel Unit(std::size_t n) {
    return CostModel(std::vector<std::uint32_t>(n, 1));
  }

  /// Explicit prices; every price must be >= 1.
  explicit CostModel(std::vector<std::uint32_t> costs)
      : costs_(std::move(costs)) {
    for (const auto c : costs_) {
      AIGS_CHECK(c >= 1);
    }
  }

  /// Uniformly random integer prices in [lo, hi].
  static CostModel UniformRandom(std::size_t n, std::uint32_t lo,
                                 std::uint32_t hi, Rng& rng);

  std::size_t size() const { return costs_.size(); }

  /// Price of querying v.
  std::uint32_t CostOf(NodeId v) const {
    AIGS_DCHECK(v < costs_.size());
    return costs_[v];
  }

  /// True iff every price is 1.
  bool IsUnit() const;

  const std::vector<std::uint32_t>& costs() const { return costs_; }

 private:
  std::vector<std::uint32_t> costs_;
};

}  // namespace aigs

#endif  // AIGS_ORACLE_COST_MODEL_H_
