#include "graph/compressed_closure.h"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "util/thread_pool.h"

namespace aigs {

namespace {

// Number of 0→1 transitions across the chunk's words (runs of set bits).
// `carry` threads bit 63 of the previous word so a run spanning a word
// boundary counts once.
std::size_t CountRuns(std::span<const std::uint64_t> chunk_words) {
  std::size_t runs = 0;
  std::uint64_t carry = 0;
  for (const std::uint64_t word : chunk_words) {
    const std::uint64_t starts = word & ~((word << 1) | carry);
    runs += static_cast<std::size_t>(std::popcount(starts));
    carry = word >> 63;
  }
  return runs;
}

}  // namespace

CompressedClosure::CompressedClosure(const Digraph& g,
                                     const BuildOptions& options) {
  AIGS_CHECK(g.finalized());
  BuildFromGraph(g, options);
}

CompressedClosure::CompressedClosure(const std::vector<DynamicBitset>& rows) {
  AIGS_CHECK(!rows.empty());
  n_ = rows[0].size();
  AIGS_CHECK(n_ > 0 && n_ <= kMaxNodes);
  words_ = (n_ + 63) / 64;
  pos_.resize(n_);
  node_at_pos_.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    pos_[v] = static_cast<std::uint32_t>(v);
    node_at_pos_[v] = static_cast<NodeId>(v);
  }
  rows_.resize(rows.size());
  for (std::size_t v = 0; v < rows.size(); ++v) {
    AIGS_CHECK(rows[v].size() == n_);
    const std::size_t lo = rows[v].FindFirst();
    if (lo == n_) {
      rows_[v] = RowRef{0, 0, 0};  // empty chunked row
      continue;
    }
    std::size_t hi = lo;
    rows[v].ForEachSetBit([&hi](std::size_t p) { hi = p; });
    rows_[v] = EncodeRowTo(RowSink{&chunk_refs_, &word_pool_, &u16_pool_},
                           rows[v], lo, hi, rows[v].CountInRange(lo, hi + 1));
  }
}

void CompressedClosure::BuildFromGraph(const Digraph& g,
                                       const BuildOptions& options) {
  n_ = g.NumNodes();
  AIGS_CHECK(n_ > 0 && n_ <= kMaxNodes);
  words_ = (n_ + 63) / 64;

  // 1. DFS-preorder positions over the first-visit spanning tree. The
  // permutation makes every DFS subtree one contiguous position range.
  pos_.assign(n_, 0);
  node_at_pos_.assign(n_, kInvalidNode);
  std::vector<NodeId> tree_parent(n_, kInvalidNode);
  std::vector<std::uint32_t> subtree_end(n_, 0);
  std::vector<bool> visited(n_, false);
  std::uint32_t clock = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, child index)
  const NodeId root = g.root();
  visited[root] = true;
  pos_[root] = clock;
  node_at_pos_[clock++] = root;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [u, next_child] = stack.back();
    const auto children = g.Children(u);
    if (next_child < children.size()) {
      const NodeId c = children[next_child++];
      if (visited[c]) {
        continue;  // non-tree edge
      }
      visited[c] = true;
      tree_parent[c] = u;
      pos_[c] = clock;
      node_at_pos_[clock++] = c;
      stack.emplace_back(c, 0);
    } else {
      subtree_end[u] = clock;
      stack.pop_back();
    }
  }
  AIGS_CHECK(clock == n_);  // finalized graphs: root reaches every node

  // 2. Pure-tree marking, children before parents: R(v) is exactly v's DFS
  // subtree interval iff every out-edge of v is a spanning-tree edge and
  // every child is itself pure.
  const std::vector<NodeId>& topo = g.TopologicalOrder();
  std::vector<bool> pure(n_, false);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    bool p = true;
    for (const NodeId c : g.Children(u)) {
      if (tree_parent[c] != u || !pure[c]) {
        p = false;
        break;
      }
    }
    pure[u] = p;
  }

  // 3. Reverse-topological encode. Pure rows become intervals with no
  // materialization at all either way; the serial path unions each impure
  // row into ONE dense scratch row (children's rows expand from their
  // already-compressed form), encodes, and clears again — peak memory is
  // the compressed output plus a single O(n/8) scratch row. The parallel
  // path shards dependency levels of impure rows across workers and
  // concatenates afterwards (see BuildImpureRowsParallel); its encoded
  // bytes are identical, for one scratch row per shard extra.
  rows_.resize(n_);
  // Build-time touched range [lo, hi] of each finished row, so parents know
  // how far their union reaches without scanning.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> bounds(n_);

  std::size_t workers = 1;
  if (options.pool != nullptr) {
    workers = options.pool->num_threads();
  } else if (options.threads > 0) {
    workers = static_cast<std::size_t>(options.threads);
  } else {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Small catalogs stay serial: the streaming loop is sub-millisecond there
  // and per-shard scratch rows plus the level barriers would cost more than
  // they save.
  constexpr std::size_t kParallelMinNodes = std::size_t{1} << 13;
  if (workers > 1 && n_ >= kParallelMinNodes) {
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId u = *it;
      if (pure[u]) {
        const std::uint32_t len = subtree_end[u] - pos_[u];
        rows_[u] = RowRef{pos_[u], len | kIntervalFlag, len};
        bounds[u] = {pos_[u], subtree_end[u] - 1};
      }
    }
    ThreadPool& pool =
        options.pool != nullptr ? *options.pool : ThreadPool::Default();
    BuildImpureRowsParallel(g, pure, bounds, pool, workers);
    return;
  }

  DynamicBitset scratch(n_);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    if (pure[u]) {
      const std::uint32_t len = subtree_end[u] - pos_[u];
      rows_[u] = RowRef{pos_[u], len | kIntervalFlag, len};
      bounds[u] = {pos_[u], subtree_end[u] - 1};
      continue;
    }
    std::size_t lo = pos_[u];
    std::size_t hi = pos_[u];
    scratch.Set(pos_[u]);
    for (const NodeId c : g.Children(u)) {
      ExpandRowInto(c, scratch);
      lo = std::min<std::size_t>(lo, bounds[c].first);
      hi = std::max<std::size_t>(hi, bounds[c].second);
    }
    rows_[u] = EncodeRowTo(RowSink{&chunk_refs_, &word_pool_, &u16_pool_},
                           scratch, lo, hi, scratch.CountInRange(lo, hi + 1));
    bounds[u] = {static_cast<std::uint32_t>(lo),
                 static_cast<std::uint32_t>(hi)};
    scratch.ClearRange(lo, hi + 1);
  }
}

void CompressedClosure::BuildImpureRowsParallel(
    const Digraph& g, const std::vector<bool>& pure,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& bounds,
    ThreadPool& pool, std::size_t workers) {
  const std::vector<NodeId>& topo = g.TopologicalOrder();
  constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  std::vector<std::uint32_t> slot(n_, kNoSlot);
  std::vector<NodeId> impure;  // reverse-topo: children before parents
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if (!pure[*it]) {
      slot[*it] = static_cast<std::uint32_t>(impure.size());
      impure.push_back(*it);
    }
  }
  if (impure.empty()) {
    return;
  }

  // Dependency levels among impure rows only: pure children expand straight
  // from their interval RowRef, so only impure children order the build.
  // Rows within one level have no edges between them and build in parallel.
  std::vector<std::uint32_t> level(impure.size(), 0);
  std::uint32_t num_levels = 1;
  for (const NodeId u : impure) {
    std::uint32_t lv = 0;
    for (const NodeId c : g.Children(u)) {
      if (slot[c] != kNoSlot) {
        lv = std::max(lv, level[slot[c]] + 1);
      }
    }
    level[slot[u]] = lv;
    num_levels = std::max(num_levels, lv + 1);
  }
  // Bucket by level, preserving reverse-topo order inside each level.
  std::vector<std::uint32_t> level_begin(num_levels + 1, 0);
  for (const std::uint32_t lv : level) {
    ++level_begin[lv + 1];
  }
  for (std::uint32_t lv = 0; lv < num_levels; ++lv) {
    level_begin[lv + 1] += level_begin[lv];
  }
  std::vector<NodeId> by_level(impure.size());
  {
    std::vector<std::uint32_t> cursor(level_begin.begin(),
                                      level_begin.end() - 1);
    for (const NodeId u : impure) {
      by_level[cursor[level[slot[u]]]++] = u;
    }
  }

  // Each impure row encodes into its own detached pools; each shard reuses
  // one dense scratch row across its slice of a level.
  std::vector<RowEncoding> enc(impure.size());
  const std::size_t shard_cap = std::min<std::size_t>(workers, 64);
  std::vector<DynamicBitset> scratches(shard_cap, DynamicBitset(n_));

  for (std::uint32_t lv = 0; lv < num_levels; ++lv) {
    const std::size_t begin = level_begin[lv];
    const std::size_t len = level_begin[lv + 1] - begin;
    if (len == 0) {
      continue;
    }
    const std::size_t shards = std::min(shard_cap, len);
    const std::size_t per_shard = (len + shards - 1) / shards;
    pool.RunShards(shards, [&](std::size_t s) {
      DynamicBitset& scratch = scratches[s];
      const std::size_t sb = begin + s * per_shard;
      const std::size_t se = std::min(begin + len, sb + per_shard);
      for (std::size_t i = sb; i < se; ++i) {
        const NodeId u = by_level[i];
        std::size_t lo = pos_[u];
        std::size_t hi = pos_[u];
        scratch.Set(pos_[u]);
        for (const NodeId c : g.Children(u)) {
          if (slot[c] == kNoSlot) {
            // Pure child: interval row, no pools involved.
            ExpandEncodedInto(rows_[c], nullptr, nullptr, nullptr, scratch);
          } else {
            const RowEncoding& ce = enc[slot[c]];
            ExpandEncodedInto(ce.row, ce.refs.data(), ce.words.data(),
                              ce.u16.data(), scratch);
          }
          lo = std::min<std::size_t>(lo, bounds[c].first);
          hi = std::max<std::size_t>(hi, bounds[c].second);
        }
        RowEncoding& mine = enc[slot[u]];
        mine.row =
            EncodeRowTo(RowSink{&mine.refs, &mine.words, &mine.u16}, scratch,
                        lo, hi, scratch.CountInRange(lo, hi + 1));
        bounds[u] = {static_cast<std::uint32_t>(lo),
                     static_cast<std::uint32_t>(hi)};
        scratch.ClearRange(lo, hi + 1);
      }
    });
  }

  // Assembly: rebase every per-row encoding into the shared pools in
  // reverse-topological order — exactly the serial append order, so the
  // pools and payload offsets come out byte-identical to a serial build.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId u = *it;
    if (slot[u] == kNoSlot) {
      continue;
    }
    RowEncoding& e = enc[slot[u]];
    if (e.row.extent & kIntervalFlag) {
      rows_[u] = e.row;
      e = RowEncoding{};
      continue;
    }
    AIGS_CHECK(chunk_refs_.size() <= 0xFFFFFFFFu);
    // Every payload offset this row lands at must fit the u32 ChunkRef
    // field — the same bound the serial build checks per chunk.
    AIGS_CHECK(word_pool_.size() + e.words.size() <= 0x100000000ull);
    AIGS_CHECK(u16_pool_.size() + e.u16.size() <= 0x100000000ull);
    const std::uint32_t word_base = static_cast<std::uint32_t>(word_pool_.size());
    const std::uint32_t u16_base = static_cast<std::uint32_t>(u16_pool_.size());
    rows_[u] = RowRef{static_cast<std::uint32_t>(chunk_refs_.size()),
                      e.row.extent, e.row.count};
    for (ChunkRef ref : e.refs) {
      ref.payload += ChunkKindOf(ref) == kDenseChunk ? word_base : u16_base;
      chunk_refs_.push_back(ref);
    }
    word_pool_.insert(word_pool_.end(), e.words.begin(), e.words.end());
    u16_pool_.insert(u16_pool_.end(), e.u16.begin(), e.u16.end());
    e = RowEncoding{};  // release the per-row buffers eagerly
  }
}

CompressedClosure::RowRef CompressedClosure::EncodeRowTo(
    const RowSink& sink, const DynamicBitset& scratch, std::size_t lo,
    std::size_t hi, std::size_t count) const {
  AIGS_DCHECK(count > 0 && lo <= hi && hi < n_);
  std::vector<ChunkRef>& chunk_refs = *sink.refs;
  std::vector<std::uint64_t>& word_pool = *sink.words;
  std::vector<std::uint16_t>& u16_pool = *sink.u16;
  if (count == hi - lo + 1) {
    // Contiguous — store as an interval even when u is not tree-pure (the
    // root of a DAG, for instance, always reaches [0, n)).
    return RowRef{static_cast<std::uint32_t>(lo),
                  static_cast<std::uint32_t>(count) | kIntervalFlag,
                  static_cast<std::uint32_t>(count)};
  }
  const std::size_t first_ref = chunk_refs.size();
  const std::span<const std::uint64_t> all_words(scratch.words());
  for (std::size_t ck = lo / kChunkBits; ck <= hi / kChunkBits; ++ck) {
    const std::size_t wbegin = ck * kChunkWords;
    const std::size_t wend = std::min(wbegin + kChunkWords, words_);
    const std::span<const std::uint64_t> chunk_words =
        all_words.subspan(wbegin, wend - wbegin);
    std::size_t bits = 0;
    for (const std::uint64_t word : chunk_words) {
      bits += static_cast<std::size_t>(std::popcount(word));
    }
    if (bits == 0) {
      continue;
    }
    const std::size_t runs = CountRuns(chunk_words);
    const std::size_t dense_cost = chunk_words.size() * 8;
    const std::size_t delta_cost = 2 * bits;
    const std::size_t run_cost = 4 * runs;

    ChunkRef ref;
    ref.chunk = static_cast<std::uint16_t>(ck);
    if (run_cost <= delta_cost && run_cost <= dense_cost) {
      AIGS_CHECK(u16_pool.size() <= 0xFFFFFFFFu);
      ref.payload = static_cast<std::uint32_t>(u16_pool.size());
      ref.meta = static_cast<std::uint16_t>(kRunChunk | (runs << 2));
      // Extract maximal runs of set bits, merging across word boundaries.
      std::size_t run_start = 0;
      std::size_t run_len = 0;
      std::size_t emitted = 0;
      for (std::size_t w = 0; w < chunk_words.size(); ++w) {
        std::uint64_t word = chunk_words[w];
        while (word != 0) {
          const std::size_t start =
              (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
          const std::uint64_t shifted = word >> (start & 63);
          const std::size_t len =
              static_cast<std::size_t>(std::countr_one(shifted));
          if (run_len > 0 && run_start + run_len == start) {
            run_len += len;  // continues the previous word's trailing run
          } else {
            if (run_len > 0) {
              u16_pool.push_back(static_cast<std::uint16_t>(run_start));
              u16_pool.push_back(static_cast<std::uint16_t>(run_len));
              ++emitted;
            }
            run_start = start;
            run_len = len;
          }
          if ((start & 63) + len >= 64) {
            word = 0;
          } else {
            word &= ~std::uint64_t{0} << ((start & 63) + len);
          }
        }
      }
      if (run_len > 0) {
        u16_pool.push_back(static_cast<std::uint16_t>(run_start));
        u16_pool.push_back(static_cast<std::uint16_t>(run_len));
        ++emitted;
      }
      AIGS_DCHECK(emitted == runs);
    } else if (delta_cost <= dense_cost) {
      AIGS_CHECK(u16_pool.size() <= 0xFFFFFFFFu);
      ref.payload = static_cast<std::uint32_t>(u16_pool.size());
      ref.meta = static_cast<std::uint16_t>(kDeltaChunk | (bits << 2));
      for (std::size_t w = 0; w < chunk_words.size(); ++w) {
        std::uint64_t word = chunk_words[w];
        while (word != 0) {
          u16_pool.push_back(static_cast<std::uint16_t>(
              (w << 6) + static_cast<std::size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
    } else {
      AIGS_CHECK(word_pool.size() <= 0xFFFFFFFFu);
      ref.payload = static_cast<std::uint32_t>(word_pool.size());
      ref.meta =
          static_cast<std::uint16_t>(kDenseChunk | (chunk_words.size() << 2));
      word_pool.insert(word_pool.end(), chunk_words.begin(), chunk_words.end());
    }
    chunk_refs.push_back(ref);
  }
  AIGS_CHECK(chunk_refs.size() - first_ref <= 0xFFFFFFFFu);
  return RowRef{static_cast<std::uint32_t>(first_ref),
                static_cast<std::uint32_t>(chunk_refs.size() - first_ref),
                static_cast<std::uint32_t>(count)};
}

bool CompressedClosure::TestPos(NodeId u, std::size_t p) const {
  const RowRef& row = rows_[u];
  if (row.extent & kIntervalFlag) {
    return p >= row.first && p < row.first + (row.extent & ~kIntervalFlag);
  }
  const std::uint16_t ck = static_cast<std::uint16_t>(p / kChunkBits);
  const auto begin = chunk_refs_.begin() + row.first;
  const auto end = begin + row.extent;
  const auto it = std::lower_bound(
      begin, end, ck,
      [](const ChunkRef& ref, std::uint16_t c) { return ref.chunk < c; });
  if (it == end || it->chunk != ck) {
    return false;
  }
  const std::uint16_t off = static_cast<std::uint16_t>(p % kChunkBits);
  const std::uint16_t items = ChunkItems(*it);
  switch (ChunkKindOf(*it)) {
    case kDenseChunk: {
      const std::uint16_t w = off >> 6;
      if (w >= items) {
        return false;
      }
      return (word_pool_[it->payload + w] >> (off & 63)) & 1;
    }
    case kDeltaChunk: {
      const std::uint16_t* base = u16_pool_.data() + it->payload;
      return std::binary_search(base, base + items, off);
    }
    case kRunChunk:
      for (std::uint16_t i = 0; i < items; ++i) {
        const std::uint16_t start = u16_pool_[it->payload + 2 * i];
        if (off < start) {
          return false;  // runs are ascending
        }
        if (off < start + u16_pool_[it->payload + 2 * i + 1]) {
          return true;
        }
      }
      return false;
  }
  return false;
}

DynamicBitset::CountAndWeight CompressedClosure::IntersectCountAndWeight(
    NodeId u, const DynamicBitset& alive,
    const BlockedWeights& pos_weights) const {
  AIGS_DCHECK(alive.size() == n_);
  const RowRef& row = rows_[u];
  if (row.extent & kIntervalFlag) {
    return alive.RangeCountAndWeightedSum(
        row.first, row.first + (row.extent & ~kIntervalFlag), pos_weights);
  }
  DynamicBitset::CountAndWeight out;
  const std::vector<Weight>& values = pos_weights.weights();
  for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
    const ChunkRef& ref = chunk_refs_[r];
    const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
    const std::uint16_t items = ChunkItems(ref);
    switch (ChunkKindOf(ref)) {
      case kDenseChunk: {
        const auto part = alive.MaskedWordsCountAndWeightedSum(
            static_cast<std::size_t>(ref.chunk) * kChunkWords,
            std::span<const std::uint64_t>(word_pool_.data() + ref.payload,
                                           items),
            pos_weights);
        out.count += part.count;
        out.weight += part.weight;
        break;
      }
      case kDeltaChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t p = base + u16_pool_[ref.payload + i];
          if (alive.Test(p)) {
            ++out.count;
            out.weight += values[p];
          }
        }
        break;
      case kRunChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t start = base + u16_pool_[ref.payload + 2 * i];
          const std::size_t len = u16_pool_[ref.payload + 2 * i + 1];
          const auto part =
              alive.RangeCountAndWeightedSum(start, start + len, pos_weights);
          out.count += part.count;
          out.weight += part.weight;
        }
        break;
    }
  }
  return out;
}

std::size_t CompressedClosure::IntersectCount(NodeId u,
                                              const DynamicBitset& alive) const {
  AIGS_DCHECK(alive.size() == n_);
  const RowRef& row = rows_[u];
  if (row.extent & kIntervalFlag) {
    return alive.CountInRange(row.first,
                              row.first + (row.extent & ~kIntervalFlag));
  }
  std::size_t total = 0;
  const std::vector<std::uint64_t>& alive_words = alive.words();
  for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
    const ChunkRef& ref = chunk_refs_[r];
    const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
    const std::uint16_t items = ChunkItems(ref);
    switch (ChunkKindOf(ref)) {
      case kDenseChunk: {
        const std::size_t wbegin =
            static_cast<std::size_t>(ref.chunk) * kChunkWords;
        for (std::uint16_t w = 0; w < items; ++w) {
          total += static_cast<std::size_t>(std::popcount(
              alive_words[wbegin + w] & word_pool_[ref.payload + w]));
        }
        break;
      }
      case kDeltaChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          total += alive.Test(base + u16_pool_[ref.payload + i]) ? 1 : 0;
        }
        break;
      case kRunChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t start = base + u16_pool_[ref.payload + 2 * i];
          const std::size_t len = u16_pool_[ref.payload + 2 * i + 1];
          total += alive.CountInRange(start, start + len);
        }
        break;
    }
  }
  return total;
}

void CompressedClosure::IntersectInto(NodeId u, DynamicBitset& alive) const {
  AIGS_DCHECK(alive.size() == n_);
  const RowRef& row = rows_[u];
  if (row.extent & kIntervalFlag) {
    alive.KeepOnlyRange(row.first, row.first + (row.extent & ~kIntervalFlag));
    return;
  }
  std::size_t prev = 0;  // first position not yet masked
  for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
    const ChunkRef& ref = chunk_refs_[r];
    const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
    const std::size_t chunk_end = std::min(base + kChunkBits, n_);
    alive.ClearRange(prev, base);
    const std::uint16_t items = ChunkItems(ref);
    switch (ChunkKindOf(ref)) {
      case kDenseChunk: {
        alive.AndWordsAt(
            static_cast<std::size_t>(ref.chunk) * kChunkWords,
            std::span<const std::uint64_t>(word_pool_.data() + ref.payload,
                                           items));
        // A dense payload always spans the whole (possibly tail-short)
        // chunk, so nothing past its words needs clearing.
        break;
      }
      case kDeltaChunk: {
        std::uint64_t decoded[kChunkWords] = {};
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::uint16_t off = u16_pool_[ref.payload + i];
          decoded[off >> 6] |= std::uint64_t{1} << (off & 63);
        }
        const std::size_t wbegin =
            static_cast<std::size_t>(ref.chunk) * kChunkWords;
        alive.AndWordsAt(wbegin, std::span<const std::uint64_t>(
                                     decoded, std::min(kChunkWords,
                                                       words_ - wbegin)));
        break;
      }
      case kRunChunk: {
        std::size_t keep_from = base;
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t start = base + u16_pool_[ref.payload + 2 * i];
          const std::size_t len = u16_pool_[ref.payload + 2 * i + 1];
          alive.ClearRange(keep_from, start);
          keep_from = start + len;
        }
        alive.ClearRange(keep_from, chunk_end);
        break;
      }
    }
    prev = chunk_end;
  }
  alive.ClearRange(prev, n_);
}

void CompressedClosure::SubtractFrom(NodeId u, DynamicBitset& alive) const {
  AIGS_DCHECK(alive.size() == n_);
  const RowRef& row = rows_[u];
  if (row.extent & kIntervalFlag) {
    alive.ClearRange(row.first, row.first + (row.extent & ~kIntervalFlag));
    return;
  }
  for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
    const ChunkRef& ref = chunk_refs_[r];
    const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
    const std::uint16_t items = ChunkItems(ref);
    switch (ChunkKindOf(ref)) {
      case kDenseChunk:
        alive.AndNotWordsAt(
            static_cast<std::size_t>(ref.chunk) * kChunkWords,
            std::span<const std::uint64_t>(word_pool_.data() + ref.payload,
                                           items));
        break;
      case kDeltaChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          alive.Reset(base + u16_pool_[ref.payload + i]);
        }
        break;
      case kRunChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t start = base + u16_pool_[ref.payload + 2 * i];
          alive.ClearRange(start, start + u16_pool_[ref.payload + 2 * i + 1]);
        }
        break;
    }
  }
}

void CompressedClosure::ExpandRowInto(NodeId u, DynamicBitset& out) const {
  AIGS_DCHECK(out.size() == n_);
  ExpandEncodedInto(rows_[u], chunk_refs_.data(), word_pool_.data(),
                    u16_pool_.data(), out);
}

void CompressedClosure::ExpandEncodedInto(const RowRef& row,
                                          const ChunkRef* refs,
                                          const std::uint64_t* word_pool,
                                          const std::uint16_t* u16_pool,
                                          DynamicBitset& out) {
  if (row.extent & kIntervalFlag) {
    out.SetRange(row.first, row.first + (row.extent & ~kIntervalFlag));
    return;
  }
  for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
    const ChunkRef& ref = refs[r];
    const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
    const std::uint16_t items = ChunkItems(ref);
    switch (ChunkKindOf(ref)) {
      case kDenseChunk:
        out.OrWordsAt(
            static_cast<std::size_t>(ref.chunk) * kChunkWords,
            std::span<const std::uint64_t>(word_pool + ref.payload, items));
        break;
      case kDeltaChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          out.Set(base + u16_pool[ref.payload + i]);
        }
        break;
      case kRunChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t start = base + u16_pool[ref.payload + 2 * i];
          out.SetRange(start, start + u16_pool[ref.payload + 2 * i + 1]);
        }
        break;
    }
  }
}

Weight CompressedClosure::RowWeightFromPrefix(
    NodeId u, std::span<const Weight> prefix) const {
  AIGS_DCHECK(prefix.size() == n_ + 1);
  const RowRef& row = rows_[u];
  if (row.extent & kIntervalFlag) {
    const std::size_t end = row.first + (row.extent & ~kIntervalFlag);
    return prefix[end] - prefix[row.first];
  }
  Weight total = 0;
  for (std::uint32_t r = row.first; r < row.first + row.extent; ++r) {
    const ChunkRef& ref = chunk_refs_[r];
    const std::size_t base = static_cast<std::size_t>(ref.chunk) * kChunkBits;
    const std::uint16_t items = ChunkItems(ref);
    switch (ChunkKindOf(ref)) {
      case kDenseChunk:
        for (std::uint16_t w = 0; w < items; ++w) {
          std::uint64_t word = word_pool_[ref.payload + w];
          while (word != 0) {
            const std::size_t p = base + (static_cast<std::size_t>(w) << 6) +
                                  static_cast<std::size_t>(
                                      std::countr_zero(word));
            total += prefix[p + 1] - prefix[p];
            word &= word - 1;
          }
        }
        break;
      case kDeltaChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t p = base + u16_pool_[ref.payload + i];
          total += prefix[p + 1] - prefix[p];
        }
        break;
      case kRunChunk:
        for (std::uint16_t i = 0; i < items; ++i) {
          const std::size_t start = base + u16_pool_[ref.payload + 2 * i];
          const std::size_t len = u16_pool_[ref.payload + 2 * i + 1];
          total += prefix[start + len] - prefix[start];
        }
        break;
    }
  }
  return total;
}

CompressedClosure::Stats CompressedClosure::stats() const {
  Stats s;
  for (const RowRef& row : rows_) {
    if (row.extent & kIntervalFlag) {
      ++s.interval_rows;
    } else {
      ++s.chunked_rows;
    }
  }
  for (const ChunkRef& ref : chunk_refs_) {
    switch (ChunkKindOf(ref)) {
      case kDenseChunk:
        ++s.dense_chunks;
        break;
      case kDeltaChunk:
        ++s.delta_chunks;
        break;
      case kRunChunk:
        ++s.run_chunks;
        break;
    }
  }
  return s;
}

bool CompressedClosure::IdenticalEncoding(const CompressedClosure& other) const {
  return n_ == other.n_ && pos_ == other.pos_ &&
         node_at_pos_ == other.node_at_pos_ && rows_ == other.rows_ &&
         chunk_refs_ == other.chunk_refs_ && word_pool_ == other.word_pool_ &&
         u16_pool_ == other.u16_pool_;
}

std::size_t CompressedClosure::MemoryBytes() const {
  return rows_.size() * sizeof(RowRef) +
         chunk_refs_.size() * sizeof(ChunkRef) +
         word_pool_.size() * sizeof(std::uint64_t) +
         u16_pool_.size() * sizeof(std::uint16_t) +
         pos_.size() * sizeof(std::uint32_t) +
         node_at_pos_.size() * sizeof(NodeId);
}

}  // namespace aigs
