#include "data/dataset_io.h"

#include <vector>

#include "data/builtin.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "prob/weight_io.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace aigs {

Status SaveDatasetFiles(const Dataset& dataset, const std::string& prefix) {
  AIGS_RETURN_NOT_OK(
      SaveHierarchy(dataset.hierarchy.graph(), prefix + ".hierarchy.txt"));
  AIGS_RETURN_NOT_OK(
      SaveDistribution(dataset.real_distribution, prefix + ".counts.txt"));
  return Status::OK();
}

StatusOr<Dataset> LoadDatasetFiles(const std::string& name,
                                   const std::string& prefix) {
  AIGS_ASSIGN_OR_RETURN(Digraph graph,
                        LoadHierarchy(prefix + ".hierarchy.txt"));
  AIGS_ASSIGN_OR_RETURN(Hierarchy hierarchy,
                        Hierarchy::Build(std::move(graph)));
  AIGS_ASSIGN_OR_RETURN(Distribution counts,
                        LoadDistribution(prefix + ".counts.txt"));
  if (counts.size() != hierarchy.NumNodes()) {
    return Status::InvalidArgument(
        "count file covers " + std::to_string(counts.size()) +
        " nodes but the hierarchy has " +
        std::to_string(hierarchy.NumNodes()));
  }
  Dataset dataset{.name = name,
                  .hierarchy = std::move(hierarchy),
                  .real_distribution = std::move(counts),
                  .num_objects = 0};
  dataset.num_objects = dataset.real_distribution.Total();
  return dataset;
}

StatusOr<Digraph> LoadHierarchySpec(const std::string& spec) {
  if (spec.rfind("builtin:", 0) == 0) {
    const std::string which = spec.substr(8);
    if (which == "vehicle") {
      return BuildVehicleHierarchy();
    }
    if (which == "fig2") {
      return BuildFig2Hierarchy();
    }
    if (which == "fig3") {
      return BuildFig3Hierarchy();
    }
    return Status::InvalidArgument(
        "unknown builtin hierarchy '" + which +
        "' (want vehicle, fig2, or fig3)");
  }
  if (spec.rfind("synthetic:", 0) == 0) {
    const std::vector<std::string_view> parts = Split(spec, ':');
    if (parts.size() != 3 && parts.size() != 4) {
      return Status::InvalidArgument(
          "synthetic spec '" + spec +
          "' is not synthetic:{tree|dag}:N[:seed]");
    }
    AIGS_ASSIGN_OR_RETURN(const std::uint64_t n, ParseUint64(parts[2]));
    if (n == 0) {
      return Status::InvalidArgument("synthetic hierarchy needs n > 0");
    }
    std::uint64_t seed = 1;
    if (parts.size() == 4) {
      AIGS_ASSIGN_OR_RETURN(seed, ParseUint64(parts[3]));
    }
    Rng rng(seed);
    if (parts[1] == "tree") {
      return RandomTree(static_cast<std::size_t>(n), rng);
    }
    if (parts[1] == "dag") {
      return RandomDag(static_cast<std::size_t>(n), rng);
    }
    return Status::InvalidArgument("unknown synthetic kind '" +
                                   std::string(parts[1]) +
                                   "' (want tree or dag)");
  }
  return LoadHierarchy(spec);
}

}  // namespace aigs
