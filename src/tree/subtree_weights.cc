#include "tree/subtree_weights.h"

namespace aigs {

std::vector<Weight> ComputeSubtreeWeights(const Tree& tree,
                                          const std::vector<Weight>& weights) {
  const std::size_t n = tree.NumNodes();
  AIGS_CHECK(weights.size() == n);
  std::vector<Weight> subtree(weights);
  // Children precede nothing in reverse preorder: accumulating child sums
  // into parents in reverse preorder is a valid bottom-up pass.
  const std::vector<NodeId>& order = tree.Preorder();
  for (std::size_t i = n; i-- > 1;) {
    const NodeId v = order[i];
    subtree[tree.Parent(v)] += subtree[v];
  }
  return subtree;
}

std::vector<std::uint32_t> ComputeSubtreeSizes(const Tree& tree) {
  const std::size_t n = tree.NumNodes();
  std::vector<std::uint32_t> size(n, 1);
  const std::vector<NodeId>& order = tree.Preorder();
  for (std::size_t i = n; i-- > 1;) {
    const NodeId v = order[i];
    size[tree.Parent(v)] += size[v];
  }
  return size;
}

}  // namespace aigs
