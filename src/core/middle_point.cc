#include "core/middle_point.h"

namespace aigs {

Weight GetReachableSetWeight(const Digraph& g, const CandidateSet& candidates,
                             NodeId v, const std::vector<Weight>& weights,
                             BfsScratch& scratch) {
  Weight total = 0;
  scratch.ForwardBfs(
      g, v, [&candidates](NodeId x) { return candidates.IsAlive(x); },
      [&](NodeId x) { total += weights[x]; });
  return total;
}

MiddlePoint FindMiddlePointNaive(const Digraph& g,
                                 const CandidateSet& candidates, NodeId root,
                                 const std::vector<Weight>& weights,
                                 Weight total_alive_weight,
                                 BfsScratch& scratch) {
  MiddlePoint best;
  candidates.bits().ForEachSetBit([&](std::size_t raw) {
    const NodeId v = static_cast<NodeId>(raw);
    if (v == root) {
      return;
    }
    const Weight reach =
        GetReachableSetWeight(g, candidates, v, weights, scratch);
    // |2*reach - total| computed as |reach - (total - reach)|: 2*reach can
    // overflow Weight; reach <= total_alive_weight by construction.
    const Weight rest = total_alive_weight - reach;
    const Weight diff = reach > rest ? reach - rest : rest - reach;
    if (best.node == kInvalidNode || diff < best.split_diff) {
      best.node = v;
      best.split_diff = diff;
      best.reach_weight = reach;
    }
  });
  return best;
}

}  // namespace aigs
