#include "oracle/cost_model.h"

namespace aigs {

CostModel CostModel::UniformRandom(std::size_t n, std::uint32_t lo,
                                   std::uint32_t hi, Rng& rng) {
  AIGS_CHECK(lo >= 1 && lo <= hi);
  std::vector<std::uint32_t> costs(n);
  for (auto& c : costs) {
    c = static_cast<std::uint32_t>(
        rng.UniformIntInclusive(static_cast<std::int64_t>(lo),
                                static_cast<std::int64_t>(hi)));
  }
  return CostModel(std::move(costs));
}

bool CostModel::IsUnit() const {
  for (const auto c : costs_) {
    if (c != 1) {
      return false;
    }
  }
  return true;
}

}  // namespace aigs
