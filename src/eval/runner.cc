#include "eval/runner.h"

namespace aigs {

SearchResult RunSearch(SearchSession& session, Oracle& oracle,
                       const RunOptions& options) {
  SearchResult result;
  for (;;) {
    Query query = session.Next();
    if (query.kind != Query::Kind::kDone) {
      ++result.interaction_rounds;
    }
    switch (query.kind) {
      case Query::Kind::kDone:
        result.target = query.node;
        return result;
      case Query::Kind::kReach: {
        const bool yes = oracle.Reach(query.node);
        ++result.reach_queries;
        result.priced_cost += options.cost_model != nullptr
                                  ? options.cost_model->CostOf(query.node)
                                  : 1;
        session.OnReach(query.node, yes);
        break;
      }
      case Query::Kind::kReachBatch: {
        AIGS_CHECK(!query.choices.empty());
        std::vector<bool> answers(query.choices.size());
        for (std::size_t i = 0; i < query.choices.size(); ++i) {
          answers[i] = oracle.Reach(query.choices[i]);
          ++result.reach_queries;
          result.priced_cost +=
              options.cost_model != nullptr
                  ? options.cost_model->CostOf(query.choices[i])
                  : 1;
        }
        session.OnReachBatch(query.choices, answers);
        break;
      }
      case Query::Kind::kChoice: {
        const int answer = oracle.Choice(query.choices);
        ++result.choice_queries;
        // §V-A cost metric: a k-choice query decomposes into k binary
        // queries — the crowd reads every presented choice.
        result.choices_read += query.choices.size();
        session.OnChoice(query.choices, answer);
        break;
      }
    }
    AIGS_CHECK(result.reach_queries + result.choice_queries <=
               options.max_questions);
  }
}

}  // namespace aigs
