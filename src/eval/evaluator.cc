#include "eval/evaluator.h"

#include <algorithm>
#include <atomic>

#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"

namespace aigs {
namespace {

/// Decorrelates shard RNG streams from a single user seed (splitmix64-style
/// odd-multiplier mix; Rng itself re-mixes through splitmix64 on Seed()).
std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard_index) {
  return seed + 0x9E3779B97F4A7C15ULL *
                    (static_cast<std::uint64_t>(shard_index) + 1);
}

}  // namespace

/// One contiguous range of targets (exact) or sample indices (sampled),
/// with its aggregate outputs. Aggregates use long double so the merged
/// expectation matches the serial reference bit-for-bit: shard-internal
/// accumulation order is fixed by target order and the merge happens in
/// shard order on one thread.
struct Evaluator::Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t rng_seed = 0;  // sampled mode only

  long double weighted_unit = 0;
  long double weighted_priced = 0;
  long double weighted_reach = 0;
  long double weighted_rounds = 0;
  std::uint64_t max_cost = 0;
  std::uint64_t searches = 0;
  bool all_correct = true;
};

Evaluator::Evaluator(EvalOptions options) : options_(options) {
  AIGS_CHECK(options_.threads >= 0);
  AIGS_CHECK(options_.shard_size >= 1);
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else if (options_.threads == 0) {
    pool_ = &ThreadPool::Default();
  } else if (options_.threads > 1) {
    owned_pool_ =
        std::make_unique<ThreadPool>(static_cast<std::size_t>(options_.threads));
    pool_ = owned_pool_.get();
  }
  // threads == 1: pool_ stays null — the serial reference path.
}

Evaluator::~Evaluator() = default;

std::size_t Evaluator::num_workers() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

namespace {

/// Splits [0, n) into consecutive shards of `shard_size` (the last may be
/// short). The shard structure depends only on (n, shard_size) — never on
/// the worker count — which is what makes parallel aggregation exactly
/// reproduce the serial reference.
std::size_t NumShards(std::size_t n, std::size_t shard_size) {
  return (n + shard_size - 1) / shard_size;
}

}  // namespace

EvalStats Evaluator::Exact(const Policy& policy, const Hierarchy& hierarchy,
                           const Distribution& dist) const {
  const std::size_t n = hierarchy.NumNodes();
  AIGS_CHECK(dist.size() == n);

  EvalStats stats;
  stats.per_target_cost.assign(n, 0);
  std::uint32_t* per_target = stats.per_target_cost.data();

  RunOptions run_options;
  run_options.cost_model = options_.cost_model;
  const bool include_zero = options_.include_zero_weight_targets;

  std::vector<Shard> shards(NumShards(n, options_.shard_size));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].begin = s * options_.shard_size;
    shards[s].end = std::min(n, shards[s].begin + options_.shard_size);
  }

  const auto run_shard = [&](Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const NodeId target = static_cast<NodeId>(i);
      const Weight w = dist.WeightOf(target);
      if (w == 0 && !include_zero) {
        continue;
      }
      ExactOracle oracle(hierarchy.reach(), target);
      auto session = policy.NewSession();
      const SearchResult r = RunSearch(*session, oracle, run_options);
      if (r.target != target) {
        shard.all_correct = false;
      }
      const auto unit = static_cast<std::uint32_t>(r.UnitCost());
      per_target[i] = unit;
      const auto lw = static_cast<long double>(w);
      shard.weighted_unit += lw * static_cast<long double>(unit);
      shard.weighted_priced +=
          lw * static_cast<long double>(r.priced_cost + r.choices_read);
      shard.weighted_reach +=
          lw * static_cast<long double>(r.reach_queries);
      shard.weighted_rounds +=
          lw * static_cast<long double>(r.interaction_rounds);
      shard.max_cost = std::max<std::uint64_t>(shard.max_cost, unit);
      ++shard.searches;
    }
  };

  const EvalStats merged =
      RunShards(shards, run_shard, static_cast<long double>(dist.Total()));
  stats.expected_cost = merged.expected_cost;
  stats.expected_priced_cost = merged.expected_priced_cost;
  stats.expected_reach_queries = merged.expected_reach_queries;
  stats.expected_rounds = merged.expected_rounds;
  stats.max_cost = merged.max_cost;
  stats.num_searches = merged.num_searches;
  return stats;
}

EvalStats Evaluator::Sampled(const Policy& policy, const Hierarchy& hierarchy,
                             const Distribution& dist,
                             std::size_t num_samples,
                             std::uint64_t seed) const {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  const AliasTable sampler(dist);

  RunOptions run_options;
  run_options.cost_model = options_.cost_model;

  std::vector<Shard> shards(NumShards(num_samples, options_.shard_size));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].begin = s * options_.shard_size;
    shards[s].end = std::min(num_samples, shards[s].begin + options_.shard_size);
    shards[s].rng_seed = ShardSeed(seed, s);
  }

  const auto run_shard = [&](Shard& shard) {
    Rng rng(shard.rng_seed);
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const NodeId target = sampler.Sample(rng);
      ExactOracle oracle(hierarchy.reach(), target);
      auto session = policy.NewSession();
      const SearchResult r = RunSearch(*session, oracle, run_options);
      if (r.target != target) {
        shard.all_correct = false;
      }
      const std::uint64_t unit = r.UnitCost();
      shard.weighted_unit += static_cast<long double>(unit);
      shard.weighted_priced +=
          static_cast<long double>(r.priced_cost + r.choices_read);
      shard.weighted_reach += static_cast<long double>(r.reach_queries);
      shard.weighted_rounds +=
          static_cast<long double>(r.interaction_rounds);
      shard.max_cost = std::max(shard.max_cost, unit);
      ++shard.searches;
    }
  };

  if (num_samples == 0) {
    return EvalStats{};
  }
  return RunShards(shards, run_shard,
                   static_cast<long double>(num_samples));
}

EvalStats Evaluator::RunShards(
    std::vector<Shard>& shards,
    const std::function<void(Shard&)>& run_shard,
    long double denominator) const {
  if (pool_ == nullptr) {
    // Serial reference path: same shard structure, same merge, no pool.
    for (Shard& shard : shards) {
      run_shard(shard);
    }
  } else {
    pool_->ParallelFor(
        shards.size(), [&](std::size_t s) { run_shard(shards[s]); },
        /*min_chunk=*/1);
  }

  // Deterministic merge: shard order, one thread.
  long double unit = 0, priced = 0, reach = 0, rounds = 0;
  EvalStats stats;
  bool all_correct = true;
  for (const Shard& shard : shards) {
    unit += shard.weighted_unit;
    priced += shard.weighted_priced;
    reach += shard.weighted_reach;
    rounds += shard.weighted_rounds;
    stats.max_cost = std::max(stats.max_cost, shard.max_cost);
    stats.num_searches += shard.searches;
    all_correct = all_correct && shard.all_correct;
  }
  AIGS_CHECK(all_correct && "policy misidentified a target");
  stats.expected_cost = static_cast<double>(unit / denominator);
  stats.expected_priced_cost = static_cast<double>(priced / denominator);
  stats.expected_reach_queries = static_cast<double>(reach / denominator);
  stats.expected_rounds = static_cast<double>(rounds / denominator);
  return stats;
}

EvalStats EvaluateExact(const Policy& policy, const Hierarchy& hierarchy,
                        const Distribution& dist, const EvalOptions& options) {
  return Evaluator(options).Exact(policy, hierarchy, dist);
}

EvalStats EvaluateSampled(const Policy& policy, const Hierarchy& hierarchy,
                          const Distribution& dist, std::size_t num_samples,
                          std::uint64_t seed, const EvalOptions& options) {
  return Evaluator(options).Sampled(policy, hierarchy, dist, num_samples,
                                    seed);
}

}  // namespace aigs
