#include "net/shard_router.h"

#include <algorithm>

#include "util/common.h"

namespace aigs::net {

ShardRing::ShardRing(const std::vector<Endpoint>& endpoints,
                     std::size_t vnodes)
    : num_shards_(endpoints.size()) {
  AIGS_CHECK(!endpoints.empty());
  vnodes = std::max<std::size_t>(vnodes, 1);
  ring_.reserve(endpoints.size() * vnodes);
  for (std::size_t shard = 0; shard < endpoints.size(); ++shard) {
    const std::uint64_t base = HashBytes64(endpoints[shard].ToString());
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(Mix64(base ^ Mix64(v)), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRing::ShardFor(std::uint64_t id) const {
  const std::uint64_t point = Mix64(id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap past the highest point
  }
  return it->second;
}

ShardRouter::ShardRouter(std::vector<Endpoint> endpoints,
                         ShardRouterOptions options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      ring_(endpoints_, options.vnodes),
      clients_(endpoints_.size()) {}

void ShardRouter::DisconnectAll() {
  for (AigsClient& client : clients_) {
    client.Disconnect();
  }
}

StatusOr<AigsClient*> ShardRouter::ClientFor(std::size_t shard) {
  AIGS_DCHECK(shard < clients_.size());
  AigsClient& client = clients_[shard];
  if (!client.connected()) {
    AIGS_RETURN_NOT_OK(client.Connect(endpoints_[shard], options_.client));
  }
  return &client;
}

template <typename Place>
auto ShardRouter::PlaceWithFreshId(Place place)
    -> decltype(place(static_cast<AigsClient*>(nullptr), SessionId{0})) {
  Status last = Status::Internal("no placement attempt ran");
  for (std::size_t attempt = 0; attempt < options_.max_id_attempts;
       ++attempt) {
    SessionId id = Mix64(options_.salt ^ ++id_counter_);
    if (id == 0) {
      id = 1;  // 0 means "server assigns" on the wire
    }
    AIGS_ASSIGN_OR_RETURN(AigsClient * client,
                          ClientFor(ring_.ShardFor(id)));
    auto result = place(client, id);
    if (result.ok() ||
        result.status().code() != StatusCode::kFailedPrecondition) {
      return result;
    }
    last = result.status();  // id collision on that shard — redraw
  }
  return Status::FailedPrecondition(
      "could not place a fresh session id after " +
      std::to_string(options_.max_id_attempts) +
      " attempts (last: " + last.message() + ")");
}

StatusOr<SessionId> ShardRouter::Open(const std::string& policy_spec) {
  return PlaceWithFreshId(
      [&policy_spec](AigsClient* client, SessionId id) {
        return client->Open(policy_spec, id);
      });
}

StatusOr<Query> ShardRouter::Ask(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(AigsClient * client, ClientFor(ring_.ShardFor(id)));
  return client->Ask(id);
}

Status ShardRouter::Answer(SessionId id, const SessionAnswer& answer) {
  AIGS_ASSIGN_OR_RETURN(AigsClient * client, ClientFor(ring_.ShardFor(id)));
  return client->Answer(id, answer);
}

StatusOr<std::string> ShardRouter::Save(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(AigsClient * client, ClientFor(ring_.ShardFor(id)));
  return client->Save(id);
}

StatusOr<SessionId> ShardRouter::Resume(const std::string& blob) {
  return PlaceWithFreshId([&blob](AigsClient* client, SessionId id) {
    return client->Resume(blob, id);
  });
}

StatusOr<MigrateResult> ShardRouter::Migrate(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(AigsClient * client, ClientFor(ring_.ShardFor(id)));
  return client->Migrate(id);
}

StatusOr<MigrateResult> ShardRouter::MigrateBlob(const std::string& blob) {
  return PlaceWithFreshId([&blob](AigsClient* client, SessionId id) {
    return client->MigrateBlob(blob, id);
  });
}

Status ShardRouter::Close(SessionId id) {
  AIGS_ASSIGN_OR_RETURN(AigsClient * client, ClientFor(ring_.ShardFor(id)));
  return client->Close(id);
}

StatusOr<WireStats> ShardRouter::Stats() {
  WireStats total;
  for (std::size_t shard = 0; shard < clients_.size(); ++shard) {
    AIGS_ASSIGN_OR_RETURN(AigsClient * client, ClientFor(shard));
    AIGS_ASSIGN_OR_RETURN(const WireStats stats, client->Stats());
    total.epoch = std::max(total.epoch, stats.epoch);
    total.live_sessions += stats.live_sessions;
    total.ops.opens += stats.ops.opens;
    total.ops.asks += stats.ops.asks;
    total.ops.answers += stats.ops.answers;
    total.ops.saves += stats.ops.saves;
    total.ops.resumes += stats.ops.resumes;
    total.ops.migrates += stats.ops.migrates;
    total.ops.closes += stats.ops.closes;
    total.ops.rejected += stats.ops.rejected;
    for (std::size_t i = 0; i < total.ops.rejected_by_code.size(); ++i) {
      total.ops.rejected_by_code[i] += stats.ops.rejected_by_code[i];
    }
  }
  return total;
}

}  // namespace aigs::net
