#include "eval/runtime_bench.h"

#include "eval/runner.h"
#include "oracle/oracle.h"
#include "util/timer.h"

namespace aigs {

RuntimeByDepthResult MeasureRuntimeByDepth(
    const Policy& policy, const Hierarchy& hierarchy,
    const RuntimeByDepthOptions& options) {
  const int height = hierarchy.Height();
  const int max_depth = options.max_depth < 0
                            ? height
                            : std::min(options.max_depth, height);
  std::vector<std::vector<NodeId>> by_depth(
      static_cast<std::size_t>(max_depth) + 1);
  for (NodeId v = 0; v < hierarchy.NumNodes(); ++v) {
    const int d = hierarchy.graph().Depth(v);
    if (d <= max_depth) {
      by_depth[static_cast<std::size_t>(d)].push_back(v);
    }
  }

  Rng rng(options.seed);
  RuntimeByDepthResult result;
  result.avg_millis.resize(by_depth.size(), 0);
  result.nodes_at_depth.resize(by_depth.size(), 0);
  for (std::size_t d = 0; d < by_depth.size(); ++d) {
    result.nodes_at_depth[d] = by_depth[d].size();
    if (by_depth[d].empty()) {
      continue;
    }
    double total_ms = 0;
    for (std::size_t i = 0; i < options.samples_per_depth; ++i) {
      const NodeId target =
          by_depth[d][static_cast<std::size_t>(rng.UniformInt(
              by_depth[d].size()))];
      ExactOracle oracle(hierarchy.reach(), target);
      auto session = policy.NewSession();
      WallTimer timer;
      const SearchResult r = RunSearch(*session, oracle);
      total_ms += timer.ElapsedMillis();
      AIGS_CHECK(r.target == target);
    }
    result.avg_millis[d] =
        total_ms / static_cast<double>(options.samples_per_depth);
  }
  return result;
}

}  // namespace aigs
