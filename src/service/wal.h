// Write-ahead log — the append-only record file under the durable session
// store (DurableStore owns the directory layout; this layer owns one file).
//
// Frame format (little-endian, binary-safe payloads):
//
//   u32 payload length | u32 CRC-32 of payload | payload bytes
//
// A crash can stop the final write anywhere, so the reader treats the file
// as "every prefix of valid frames counts": it scans frames until EOF or
// the first frame whose length runs past the file or whose CRC mismatches,
// returns the valid prefix, and reports the torn tail instead of failing.
// Records BEHIND a torn frame are never trusted (their framing derives
// from the damaged length), which is exactly the WAL contract: acked
// writes are a durable prefix, the unacked tail may be lost but is never
// corrupted into the recovered state.
//
// Durability is the fsync policy (group commit):
//
//   always      every Append returns only after its record is fsynced —
//               but one fsync covers every record written before it
//               started, so concurrent appenders share syncs instead of
//               queueing one syscall each.
//   interval:N  fsync once per N appended records (bounded loss window).
//   none        never fsync (the OS flushes on its own schedule).
#ifndef AIGS_SERVICE_WAL_H_
#define AIGS_SERVICE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aigs {

enum class FsyncPolicy : std::uint8_t { kAlways, kInterval, kNone };

/// When (and how often) appended records reach stable storage.
struct WalSyncOptions {
  FsyncPolicy policy = FsyncPolicy::kInterval;
  /// Records between fsyncs under kInterval (>= 1).
  std::size_t interval = 64;
};

/// Parses "always", "interval:N", or "none" (the serve REPL / bench knob).
StatusOr<WalSyncOptions> ParseFsyncPolicy(std::string_view text);

/// The inverse of ParseFsyncPolicy ("interval:64", ...).
std::string FormatFsyncPolicy(const WalSyncOptions& sync);

/// Appender for one WAL file. Thread-safe; all appends are totally ordered
/// by an internal mutex (per-session ordering is the caller's session
/// mutex; this only makes interleaved sessions' records a valid sequence).
class WalWriter {
 public:
  /// Opens `path` for appending, creating it if absent.
  static StatusOr<std::unique_ptr<WalWriter>> Open(std::string path,
                                                   WalSyncOptions sync);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record; on return the record is durable to the
  /// degree the fsync policy promises. IOError on a failed write — the
  /// caller must treat the record as NOT acked.
  Status Append(std::string_view payload);

  /// Explicit fsync of everything appended so far (graceful shutdown and
  /// checkpoint barriers), regardless of policy (kNone included).
  Status Sync();

  const std::string& path() const { return path_; }
  std::uint64_t bytes() const;
  std::uint64_t records() const;
  std::uint64_t syncs() const;

 private:
  WalWriter(std::string path, int fd, std::uint64_t bytes,
            WalSyncOptions sync);

  /// Group commit: waits/participates until record #`target` is synced.
  /// Caller holds `lock`.
  Status SyncLocked(std::unique_lock<std::mutex>& lock, std::uint64_t target);

  const std::string path_;
  const WalSyncOptions sync_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  bool sync_in_flight_ = false;
  std::uint64_t bytes_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t synced_records_ = 0;
  std::uint64_t syncs_ = 0;
};

/// Every valid record of one WAL file, plus what the torn tail looked like.
struct WalScan {
  std::vector<std::string> records;
  /// Bytes of the valid frame prefix (where an appender could resume).
  std::uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix, discarded (0 for a clean file).
  std::uint64_t torn_bytes = 0;
};

/// Reads `path` front to back. A torn/corrupt tail is reported in the
/// scan, never an error; a missing file is an empty scan. IOError only
/// when the file exists but cannot be read.
StatusOr<WalScan> ReadWal(const std::string& path);

}  // namespace aigs

#endif  // AIGS_SERVICE_WAL_H_
