#include "eval/evaluator.h"

#include <atomic>

#include "eval/runner.h"
#include "oracle/oracle.h"
#include "prob/alias_table.h"

namespace aigs {

EvalStats EvaluateExact(const Policy& policy, const Hierarchy& hierarchy,
                        const Distribution& dist, const EvalOptions& options) {
  const std::size_t n = hierarchy.NumNodes();
  AIGS_CHECK(dist.size() == n);
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();

  std::vector<std::uint32_t> unit_cost(n, 0);
  std::vector<std::uint64_t> priced_cost(n, 0);
  std::atomic<bool> all_correct{true};

  RunOptions run_options;
  run_options.cost_model = options.cost_model;

  pool.ParallelFor(n, [&](std::size_t i) {
    const NodeId target = static_cast<NodeId>(i);
    if (!options.include_zero_weight_targets && dist.WeightOf(target) == 0) {
      return;
    }
    ExactOracle oracle(hierarchy.reach(), target);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle, run_options);
    if (r.target != target) {
      all_correct.store(false, std::memory_order_relaxed);
    }
    unit_cost[i] = static_cast<std::uint32_t>(r.UnitCost());
    priced_cost[i] = r.priced_cost + r.choices_read;
  });
  AIGS_CHECK(all_correct.load() && "policy misidentified a target");

  EvalStats stats;
  stats.per_target_cost = std::move(unit_cost);
  long double weighted = 0;
  long double weighted_priced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Weight w = dist.WeightOf(static_cast<NodeId>(i));
    weighted += static_cast<long double>(w) *
                static_cast<long double>(stats.per_target_cost[i]);
    weighted_priced += static_cast<long double>(w) *
                       static_cast<long double>(priced_cost[i]);
    if (w > 0 || options.include_zero_weight_targets) {
      stats.max_cost =
          std::max<std::uint64_t>(stats.max_cost, stats.per_target_cost[i]);
      ++stats.num_searches;
    }
  }
  stats.expected_cost =
      static_cast<double>(weighted / static_cast<long double>(dist.Total()));
  stats.expected_priced_cost = static_cast<double>(
      weighted_priced / static_cast<long double>(dist.Total()));
  return stats;
}

EvalStats EvaluateSampled(const Policy& policy, const Hierarchy& hierarchy,
                          const Distribution& dist, std::size_t num_samples,
                          Rng& rng, const EvalOptions& options) {
  AIGS_CHECK(dist.size() == hierarchy.NumNodes());
  const AliasTable sampler(dist);

  // Pre-draw targets so the parallel fan-out stays deterministic.
  std::vector<NodeId> targets(num_samples);
  for (auto& t : targets) {
    t = sampler.Sample(rng);
  }

  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Default();
  std::vector<std::uint32_t> unit_cost(num_samples, 0);
  std::vector<std::uint64_t> priced_cost(num_samples, 0);
  std::atomic<bool> all_correct{true};

  RunOptions run_options;
  run_options.cost_model = options.cost_model;

  pool.ParallelFor(num_samples, [&](std::size_t i) {
    ExactOracle oracle(hierarchy.reach(), targets[i]);
    auto session = policy.NewSession();
    const SearchResult r = RunSearch(*session, oracle, run_options);
    if (r.target != targets[i]) {
      all_correct.store(false, std::memory_order_relaxed);
    }
    unit_cost[i] = static_cast<std::uint32_t>(r.UnitCost());
    priced_cost[i] = r.priced_cost + r.choices_read;
  });
  AIGS_CHECK(all_correct.load() && "policy misidentified a target");

  EvalStats stats;
  stats.num_searches = num_samples;
  long double total = 0;
  long double total_priced = 0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    total += unit_cost[i];
    total_priced += static_cast<long double>(priced_cost[i]);
    stats.max_cost = std::max<std::uint64_t>(stats.max_cost, unit_cost[i]);
  }
  if (num_samples > 0) {
    stats.expected_cost =
        static_cast<double>(total / static_cast<long double>(num_samples));
    stats.expected_priced_cost = static_cast<double>(
        total_priced / static_cast<long double>(num_samples));
  }
  return stats;
}

}  // namespace aigs
