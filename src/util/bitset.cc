#include "util/bitset.h"

#include <algorithm>

namespace aigs {

BlockedWeights::BlockedWeights(const std::vector<Weight>& weights)
    : weights_(&weights), block_sums_((weights.size() + 63) / 64, 0) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    block_sums_[i >> 6] += weights[i];
  }
}

void DynamicBitset::Resize(std::size_t size, bool value) {
  const std::size_t words = (size + 63) / 64;
  if (value && size > size_ && size_ % 64 != 0 && !words_.empty()) {
    // Bits in the old tail word beyond old size must become 1.
    words_[size_ / 64] |= ~std::uint64_t{0} << (size_ % 64);
  }
  words_.resize(words, value ? ~std::uint64_t{0} : 0);
  size_ = size;
  TrimTail();
}

void DynamicBitset::TrimTail() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
  }
}

void DynamicBitset::ClearAll() {
  std::fill(words_.begin(), words_.end(), 0);
}

void DynamicBitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  TrimTail();
}

void DynamicBitset::AndWith(const DynamicBitset& other) {
  AIGS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void DynamicBitset::OrWith(const DynamicBitset& other) {
  AIGS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void DynamicBitset::AndNotWith(const DynamicBitset& other) {
  AIGS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
}

std::size_t DynamicBitset::Count() const {
  std::size_t total = 0;
  for (const std::uint64_t word : words_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

std::size_t DynamicBitset::IntersectionCount(const DynamicBitset& other) const {
  AIGS_CHECK(size_ == other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

Weight DynamicBitset::MaskedWeightedSum(
    const DynamicBitset& mask, const std::vector<Weight>& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.size() == size_);
  Weight total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w] & mask.words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      total += weights[(w << 6) + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return total;
}

DynamicBitset::CountAndWeight DynamicBitset::MaskedCountAndWeightedSum(
    const DynamicBitset& mask, const std::vector<Weight>& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.size() == size_);
  CountAndWeight out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w] & mask.words_[w];
    out.count += static_cast<std::size_t>(std::popcount(word));
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.weight += weights[(w << 6) + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return out;
}

namespace {

/// Σ weights over the set bits of one intersection word, settled against the
/// word's precomputed block sum. `valid` masks the bit positions that exist
/// (the last word of a bitset may be partial); `word` never has bits outside
/// `valid` set.
inline Weight BlockedWordSum(std::uint64_t word, std::uint64_t valid,
                             const Weight* weights, Weight block_sum) {
  if (word == valid) {
    return block_sum;
  }
  if (std::popcount(word) > 32) {
    // Majority set: gather the complement and subtract.
    Weight off = 0;
    std::uint64_t inv = ~word & valid;
    while (inv != 0) {
      off += weights[std::countr_zero(inv)];
      inv &= inv - 1;
    }
    return block_sum - off;
  }
  Weight on = 0;
  while (word != 0) {
    on += weights[std::countr_zero(word)];
    word &= word - 1;
  }
  return on;
}

}  // namespace

Weight DynamicBitset::MaskedWeightedSum(const DynamicBitset& mask,
                                        const BlockedWeights& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.weights().size() == size_);
  const Weight* values = weights.weights().data();
  Weight total = 0;
  // The partial tail word (if any) is settled after the loop so the hot
  // loop needs no per-word valid-mask bookkeeping.
  const std::size_t tail = (size_ & 63) != 0 ? words_.size() - 1 : words_.size();
  for (std::size_t w = 0; w < tail; ++w) {
    const std::uint64_t word = words_[w] & mask.words_[w];
    if (word == 0) {
      continue;
    }
    total += BlockedWordSum(word, ~std::uint64_t{0}, values + (w << 6),
                            weights.BlockSum(w));
  }
  if (tail < words_.size()) {
    const std::uint64_t word = words_[tail] & mask.words_[tail];
    if (word != 0) {
      total += BlockedWordSum(word, (std::uint64_t{1} << (size_ & 63)) - 1,
                              values + (tail << 6), weights.BlockSum(tail));
    }
  }
  return total;
}

DynamicBitset::CountAndWeight DynamicBitset::MaskedCountAndWeightedSum(
    const DynamicBitset& mask, const BlockedWeights& weights) const {
  AIGS_CHECK(size_ == mask.size_);
  AIGS_DCHECK(weights.weights().size() == size_);
  const Weight* values = weights.weights().data();
  CountAndWeight out;
  const std::size_t tail = (size_ & 63) != 0 ? words_.size() - 1 : words_.size();
  for (std::size_t w = 0; w < tail; ++w) {
    const std::uint64_t word = words_[w] & mask.words_[w];
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight += BlockedWordSum(word, ~std::uint64_t{0}, values + (w << 6),
                                 weights.BlockSum(w));
  }
  if (tail < words_.size()) {
    const std::uint64_t word = words_[tail] & mask.words_[tail];
    if (word != 0) {
      out.count += static_cast<std::size_t>(std::popcount(word));
      out.weight += BlockedWordSum(word,
                                   (std::uint64_t{1} << (size_ & 63)) - 1,
                                   values + (tail << 6),
                                   weights.BlockSum(tail));
    }
  }
  return out;
}

Weight DynamicBitset::WeightedSum(const std::vector<Weight>& weights) const {
  AIGS_DCHECK(weights.size() == size_);
  Weight total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      total += weights[(w << 6) + static_cast<std::size_t>(bit)];
      word &= word - 1;
    }
  }
  return total;
}

namespace {

// Word-aligned mask for bit positions [begin, end) intersected with word w.
std::uint64_t RangeMaskForWord(std::size_t w, std::size_t begin,
                               std::size_t end) {
  const std::size_t word_begin = w << 6;
  const std::size_t word_end = word_begin + 64;
  if (end <= word_begin || begin >= word_end) {
    return 0;
  }
  std::uint64_t mask = ~std::uint64_t{0};
  if (begin > word_begin) {
    mask &= ~std::uint64_t{0} << (begin - word_begin);
  }
  if (end < word_end) {
    mask &= (std::uint64_t{1} << (end - word_begin)) - 1;
  }
  return mask;
}

}  // namespace

void DynamicBitset::ClearRange(std::size_t begin, std::size_t end) {
  AIGS_DCHECK(begin <= end && end <= size_);
  for (std::size_t w = begin >> 6; w < words_.size() && (w << 6) < end; ++w) {
    words_[w] &= ~RangeMaskForWord(w, begin, end);
  }
}

void DynamicBitset::KeepOnlyRange(std::size_t begin, std::size_t end) {
  AIGS_DCHECK(begin <= end && end <= size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= RangeMaskForWord(w, begin, end);
  }
}

std::size_t DynamicBitset::CountInRange(std::size_t begin,
                                        std::size_t end) const {
  AIGS_DCHECK(begin <= end && end <= size_);
  std::size_t total = 0;
  for (std::size_t w = begin >> 6; w < words_.size() && (w << 6) < end; ++w) {
    total += static_cast<std::size_t>(
        std::popcount(words_[w] & RangeMaskForWord(w, begin, end)));
  }
  return total;
}

void DynamicBitset::SetRange(std::size_t begin, std::size_t end) {
  AIGS_DCHECK(begin <= end && end <= size_);
  for (std::size_t w = begin >> 6; w < words_.size() && (w << 6) < end; ++w) {
    words_[w] |= RangeMaskForWord(w, begin, end);
  }
}

void DynamicBitset::AndWordsAt(std::size_t word_offset,
                               std::span<const std::uint64_t> mask) {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  std::uint64_t* out = words_.data() + word_offset;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    out[i] &= mask[i];
  }
}

void DynamicBitset::AndNotWordsAt(std::size_t word_offset,
                                  std::span<const std::uint64_t> mask) {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  std::uint64_t* out = words_.data() + word_offset;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    out[i] &= ~mask[i];
  }
}

void DynamicBitset::OrWordsAt(std::size_t word_offset,
                              std::span<const std::uint64_t> mask) {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  std::uint64_t* out = words_.data() + word_offset;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    out[i] |= mask[i];
  }
}

DynamicBitset::CountAndWeight DynamicBitset::RangeCountAndWeightedSum(
    std::size_t begin, std::size_t end, const BlockedWeights& weights) const {
  AIGS_DCHECK(begin <= end && end <= size_);
  AIGS_DCHECK(weights.weights().size() == size_);
  CountAndWeight out;
  if (begin >= end) {
    return out;
  }
  const Weight* values = weights.weights().data();
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    const std::uint64_t range_mask = RangeMaskForWord(w, begin, end);
    const std::uint64_t word = words_[w] & range_mask;
    if (word == 0) {
      continue;
    }
    out.count += static_cast<std::size_t>(std::popcount(word));
    // `valid` = the bit positions whose weights the block sum covers. The
    // block sum settles a word only when the range covers all of them;
    // boundary words gather per bit inside BlockedWordSum's sparse branch
    // (their intersection word is never equal to `valid`).
    const std::uint64_t valid =
        (w == words_.size() - 1 && (size_ & 63) != 0)
            ? (std::uint64_t{1} << (size_ & 63)) - 1
            : ~std::uint64_t{0};
    if (range_mask == valid) {
      out.weight +=
          BlockedWordSum(word, valid, values + (w << 6), weights.BlockSum(w));
    } else {
      std::uint64_t bits = word;
      while (bits != 0) {
        out.weight += values[(w << 6) + std::countr_zero(bits)];
        bits &= bits - 1;
      }
    }
  }
  return out;
}

DynamicBitset::CountAndWeight DynamicBitset::MaskedWordsCountAndWeightedSum(
    std::size_t word_offset, std::span<const std::uint64_t> mask,
    const BlockedWeights& weights) const {
  AIGS_DCHECK(word_offset + mask.size() <= words_.size());
  AIGS_DCHECK(weights.weights().size() == size_);
  const Weight* values = weights.weights().data();
  CountAndWeight out;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    const std::size_t w = word_offset + i;
    const std::uint64_t word = words_[w] & mask[i];
    if (word == 0) {
      continue;
    }
    const std::uint64_t valid =
        (w == words_.size() - 1 && (size_ & 63) != 0)
            ? (std::uint64_t{1} << (size_ & 63)) - 1
            : ~std::uint64_t{0};
    out.count += static_cast<std::size_t>(std::popcount(word));
    out.weight +=
        BlockedWordSum(word, valid, values + (w << 6), weights.BlockSum(w));
  }
  return out;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  AIGS_CHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool DynamicBitset::None() const {
  for (const std::uint64_t word : words_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

std::size_t DynamicBitset::FindFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

}  // namespace aigs
