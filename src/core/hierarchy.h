// Validated category hierarchy bundle: the finalized graph plus the derived
// indexes every policy needs (tree view when applicable, O(1) reachability).
// Build one Hierarchy per dataset and share it across policies, oracles and
// evaluators.
#ifndef AIGS_CORE_HIERARCHY_H_
#define AIGS_CORE_HIERARCHY_H_

#include <memory>

#include "graph/digraph.h"
#include "graph/reachability.h"
#include "tree/tree.h"
#include "util/status.h"

namespace aigs {

/// Immutable hierarchy with stable addresses (safe to move the Hierarchy
/// value itself; internals are heap-allocated).
class Hierarchy {
 public:
  /// Takes ownership of `g` (finalizing it first if necessary, adding a
  /// dummy root for multi-root inputs) and builds the indexes.
  /// `reach_options` selects the reachability storage (Euler / dense /
  /// compressed closure rows); the default auto-picks by catalog size.
  static StatusOr<Hierarchy> Build(Digraph g,
                                   ReachabilityOptions reach_options = {});

  const Digraph& graph() const { return *graph_; }
  const ReachabilityIndex& reach() const { return *reach_; }

  /// True iff the hierarchy is a rooted tree (enables GreedyTree / tree
  /// WIGS).
  bool is_tree() const { return tree_ != nullptr; }

  /// Tree view; requires is_tree().
  const Tree& tree() const {
    AIGS_CHECK(tree_ != nullptr);
    return *tree_;
  }

  NodeId root() const { return graph_->root(); }
  std::size_t NumNodes() const { return graph_->NumNodes(); }
  std::size_t NumEdges() const { return graph_->NumEdges(); }
  int Height() const { return graph_->Height(); }
  std::size_t MaxOutDegree() const { return graph_->MaxOutDegree(); }

 private:
  Hierarchy() = default;

  std::unique_ptr<Digraph> graph_;
  std::unique_ptr<Tree> tree_;  // null for non-tree DAGs
  std::unique_ptr<ReachabilityIndex> reach_;
};

}  // namespace aigs

#endif  // AIGS_CORE_HIERARCHY_H_
